//! The overlay delta: the virtual topology the MTO walk actually follows.
//!
//! The third party cannot touch the real graph; it maintains a *delta* —
//! removed and added edges — and derives the overlay neighborhood
//! `N*(v)` on demand from the cached interface response. Materializing the
//! full overlay graph `G*` (for spectral evaluation, Fig 10) replays the
//! delta onto the base topology.

use std::collections::{BTreeSet, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use mto_graph::{Edge, Graph, NodeId};

/// Multiplicative hasher for `NodeId` keys. The per-endpoint indexes are
/// read several times per walker step; SipHash dominates those lookups
/// while a Fibonacci multiply is enough for non-adversarial 4-byte keys.
#[derive(Clone, Copy, Default)]
pub struct NodeIdHasher(u64);

impl Hasher for NodeIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = u64::from(n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// Per-endpoint index: node → sorted list of delta-affected neighbors.
/// Sorted `Vec`s beat `BTreeSet`s here — reads (merge scans, binary
/// searches) vastly outnumber the rare rewiring writes.
type EndpointIndex = HashMap<NodeId, Vec<NodeId>, BuildHasherDefault<NodeIdHasher>>;

/// Removed/added edge sets with per-endpoint indexes.
///
/// Equality compares the removed/added *sets* (the per-endpoint indexes
/// are derived data) — `mto-serve` uses it to verify that a resumed
/// session replayed its way back to exactly the snapshotted overlay.
#[derive(Clone, Debug, Default)]
pub struct OverlayDelta {
    removed: BTreeSet<Edge>,
    added: BTreeSet<Edge>,
    removed_at: EndpointIndex,
    added_at: EndpointIndex,
}

impl OverlayDelta {
    /// Empty delta: the overlay equals the base graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes an edge from the overlay. Removing an edge that the delta
    /// previously *added* cancels the addition instead.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) {
        let e = Edge::new(u, v);
        if self.added.remove(&e) {
            detach(&mut self.added_at, u, v);
        } else if self.removed.insert(e) {
            attach(&mut self.removed_at, u, v);
        }
    }

    /// Adds an edge to the overlay. Adding an edge the delta previously
    /// *removed* cancels the removal instead.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        let e = Edge::new(u, v);
        if self.removed.remove(&e) {
            detach(&mut self.removed_at, u, v);
        } else if self.added.insert(e) {
            attach(&mut self.added_at, u, v);
        }
    }

    /// Whether the delta marks `(u, v)` removed.
    pub fn is_removed(&self, u: NodeId, v: NodeId) -> bool {
        // The index mirrors the canonical set exactly; one hash probe and
        // a binary search beat the edge-set B-tree walk.
        self.removed_at.get(&u).is_some_and(|s| s.binary_search(&v).is_ok())
    }

    /// Whether the delta marks `(u, v)` added.
    pub fn is_added(&self, u: NodeId, v: NodeId) -> bool {
        self.added_at.get(&u).is_some_and(|s| s.binary_search(&v).is_ok())
    }

    /// Whether the overlay contains `(u, v)` given that the base graph
    /// does (`base_has`).
    pub fn has_edge(&self, base_has: bool, u: NodeId, v: NodeId) -> bool {
        if base_has {
            !self.is_removed(u, v)
        } else {
            self.is_added(u, v)
        }
    }

    /// Number of removed edges.
    pub fn num_removed(&self) -> usize {
        self.removed.len()
    }

    /// Number of added edges.
    pub fn num_added(&self) -> usize {
        self.added.len()
    }

    /// Removed edges, canonical order.
    pub fn removed_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.removed.iter().copied()
    }

    /// Added edges, canonical order.
    pub fn added_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.added.iter().copied()
    }

    /// Whether the delta touches `v`'s neighborhood at all — the fast-path
    /// test for borrowing the base list unmodified. Leftover empty index
    /// entries (from cancelled edits) count as untouched.
    #[inline]
    pub fn touches(&self, v: NodeId) -> bool {
        self.removed_at.get(&v).is_some_and(|s| !s.is_empty())
            || self.added_at.get(&v).is_some_and(|s| !s.is_empty())
    }

    /// Overlay neighborhood `N*(v)`: the base neighborhood minus removed
    /// plus added, sorted.
    pub fn adjust_neighbors(&self, v: NodeId, base: &[NodeId]) -> Vec<NodeId> {
        if !self.touches(v) {
            return base.to_vec();
        }
        let mut out = Vec::with_capacity(base.len());
        self.adjust_neighbors_into(v, base, &mut out);
        out
    }

    /// Allocation-free variant of [`OverlayDelta::adjust_neighbors`]:
    /// writes `N*(v)` into `out` (cleared first). With a pre-grown `out`
    /// this performs no allocation; the output is identical to
    /// `adjust_neighbors` on every `(v, base)` pair.
    pub fn adjust_neighbors_into(&self, v: NodeId, base: &[NodeId], out: &mut Vec<NodeId>) {
        out.clear();
        match self.removed_at.get(&v) {
            // Both lists are sorted: a merge scan filters the removed
            // neighbors in O(|base| + |removed|).
            Some(removed) if !removed.is_empty() => {
                let mut r = 0;
                for &u in base {
                    while r < removed.len() && removed[r] < u {
                        r += 1;
                    }
                    if r < removed.len() && removed[r] == u {
                        continue;
                    }
                    out.push(u);
                }
            }
            _ => out.extend_from_slice(base),
        }
        if let Some(add) = self.added_at.get(&v) {
            for &u in add {
                if let Err(pos) = out.binary_search(&u) {
                    out.insert(pos, u);
                }
            }
        }
    }

    /// In-place variant: rewrites `list` — already holding the sorted base
    /// neighborhood of `v` — into `N*(v)`. Output is identical to
    /// [`OverlayDelta::adjust_neighbors_into`], but only one buffer is
    /// needed, which is the shape the walkers' fetch-then-adjust hot loops
    /// use.
    pub fn adjust_neighbors_in_place(&self, v: NodeId, list: &mut Vec<NodeId>) {
        if let Some(removed) = self.removed_at.get(&v) {
            if !removed.is_empty() {
                // Merge scan over two sorted lists; `retain` keeps order.
                let mut r = 0;
                list.retain(|&u| {
                    while r < removed.len() && removed[r] < u {
                        r += 1;
                    }
                    !(r < removed.len() && removed[r] == u)
                });
            }
        }
        if let Some(add) = self.added_at.get(&v) {
            for &u in add {
                if let Err(pos) = list.binary_search(&u) {
                    list.insert(pos, u);
                }
            }
        }
    }

    /// `Cow`-style overlay view: borrows `base` unmodified when the delta
    /// does not touch `v` (the common case in steady-state walking),
    /// otherwise materializes `N*(v)` into `scratch` and borrows that.
    /// Zero allocations either way once `scratch` has grown.
    #[inline]
    pub fn neighbors_view<'a>(
        &self,
        v: NodeId,
        base: &'a [NodeId],
        scratch: &'a mut Vec<NodeId>,
    ) -> &'a [NodeId] {
        if self.touches(v) {
            self.adjust_neighbors_into(v, base, scratch);
            scratch
        } else {
            base
        }
    }

    /// Overlay degree `k*_v` given the base degree.
    pub fn adjust_degree(&self, v: NodeId, base_degree: usize) -> usize {
        let removed = self.removed_at.get(&v).map_or(0, Vec::len);
        let added = self.added_at.get(&v).map_or(0, Vec::len);
        base_degree + added - removed
    }

    /// Materializes the overlay graph `G* = (V, (E \ removed) ∪ added)`.
    ///
    /// # Panics
    /// Panics if the delta is inconsistent with the base graph (removing an
    /// absent edge or adding a present one) — which indicates the delta was
    /// built against a different topology.
    pub fn materialize(&self, base: &Graph) -> Graph {
        let mut g = base.clone();
        for e in &self.removed {
            g.remove_edge(e.small(), e.large()).expect("removed edge must exist in the base graph");
        }
        for e in &self.added {
            g.add_edge(e.small(), e.large())
                .expect("added edge must be absent from the base graph");
        }
        g
    }
}

impl PartialEq for OverlayDelta {
    fn eq(&self, other: &Self) -> bool {
        // Compare the canonical edge sets only: the per-endpoint indexes
        // may hold empty leftovers after cancellations.
        self.removed == other.removed && self.added == other.added
    }
}

impl Eq for OverlayDelta {}

fn attach(index: &mut EndpointIndex, u: NodeId, v: NodeId) {
    sorted_insert(index.entry(u).or_default(), v);
    sorted_insert(index.entry(v).or_default(), u);
}

fn detach(index: &mut EndpointIndex, u: NodeId, v: NodeId) {
    sorted_remove(index.get_mut(&u), v);
    sorted_remove(index.get_mut(&v), u);
}

fn sorted_insert(list: &mut Vec<NodeId>, v: NodeId) {
    if let Err(pos) = list.binary_search(&v) {
        list.insert(pos, v);
    }
}

fn sorted_remove(list: Option<&mut Vec<NodeId>>, v: NodeId) {
    if let Some(list) = list {
        if let Ok(pos) = list.binary_search(&v) {
            list.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::generators::paper_barbell;

    fn ids(raw: &[u32]) -> Vec<NodeId> {
        raw.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn empty_delta_is_identity() {
        let d = OverlayDelta::new();
        let base = ids(&[1, 2, 3]);
        assert_eq!(d.adjust_neighbors(NodeId(0), &base), base);
        assert_eq!(d.adjust_degree(NodeId(0), 3), 3);
        assert_eq!(d.num_removed() + d.num_added(), 0);
    }

    #[test]
    fn removal_hides_neighbors() {
        let mut d = OverlayDelta::new();
        d.remove_edge(NodeId(0), NodeId(2));
        assert!(d.is_removed(NodeId(2), NodeId(0)), "orientation-free");
        assert_eq!(d.adjust_neighbors(NodeId(0), &ids(&[1, 2, 3])), ids(&[1, 3]));
        assert_eq!(d.adjust_neighbors(NodeId(2), &ids(&[0, 5])), ids(&[5]));
        assert_eq!(d.adjust_degree(NodeId(0), 3), 2);
    }

    #[test]
    fn addition_inserts_sorted() {
        let mut d = OverlayDelta::new();
        d.add_edge(NodeId(0), NodeId(4));
        d.add_edge(NodeId(0), NodeId(2));
        assert_eq!(d.adjust_neighbors(NodeId(0), &ids(&[1, 3])), ids(&[1, 2, 3, 4]));
        assert_eq!(d.adjust_degree(NodeId(0), 2), 4);
    }

    #[test]
    fn add_then_remove_cancels() {
        let mut d = OverlayDelta::new();
        d.add_edge(NodeId(0), NodeId(9));
        d.remove_edge(NodeId(9), NodeId(0));
        assert_eq!(d.num_added(), 0);
        assert_eq!(d.num_removed(), 0);
        assert_eq!(d.adjust_neighbors(NodeId(0), &ids(&[1])), ids(&[1]));
    }

    #[test]
    fn remove_then_add_cancels() {
        let mut d = OverlayDelta::new();
        d.remove_edge(NodeId(0), NodeId(1));
        d.add_edge(NodeId(0), NodeId(1));
        assert_eq!(d.num_removed(), 0);
        assert_eq!(d.num_added(), 0);
        assert_eq!(d.adjust_neighbors(NodeId(0), &ids(&[1, 2])), ids(&[1, 2]));
    }

    #[test]
    fn double_removal_is_idempotent() {
        let mut d = OverlayDelta::new();
        d.remove_edge(NodeId(0), NodeId(1));
        d.remove_edge(NodeId(0), NodeId(1));
        assert_eq!(d.num_removed(), 1);
        d.add_edge(NodeId(0), NodeId(1));
        assert_eq!(d.num_removed(), 0, "one addition cancels the single record");
    }

    #[test]
    fn has_edge_combines_base_and_delta() {
        let mut d = OverlayDelta::new();
        d.remove_edge(NodeId(0), NodeId(1));
        d.add_edge(NodeId(0), NodeId(5));
        assert!(!d.has_edge(true, NodeId(0), NodeId(1)), "removed");
        assert!(d.has_edge(true, NodeId(0), NodeId(2)), "untouched");
        assert!(d.has_edge(false, NodeId(0), NodeId(5)), "added");
        assert!(!d.has_edge(false, NodeId(0), NodeId(7)), "never existed");
    }

    #[test]
    fn replacement_pattern_updates_three_nodes() {
        // Replacement e_uv → e_uw: remove (u,v), add (u,w).
        let (u, v, w) = (NodeId(1), NodeId(5), NodeId(7));
        let mut d = OverlayDelta::new();
        d.remove_edge(u, v);
        d.add_edge(u, w);
        assert_eq!(d.adjust_degree(u, 3), 3, "u keeps its degree");
        assert_eq!(d.adjust_degree(v, 3), 2, "pivot loses one");
        assert_eq!(d.adjust_degree(w, 4), 5, "target gains one");
    }

    #[test]
    fn materialize_applies_delta() {
        let g = paper_barbell();
        let mut d = OverlayDelta::new();
        d.remove_edge(NodeId(1), NodeId(2));
        d.add_edge(NodeId(1), NodeId(12));
        let overlay = d.materialize(&g);
        assert_eq!(overlay.num_edges(), g.num_edges());
        assert!(!overlay.has_edge(NodeId(1), NodeId(2)));
        assert!(overlay.has_edge(NodeId(1), NodeId(12)));
        overlay.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "must exist in the base graph")]
    fn materialize_rejects_foreign_delta() {
        let g = paper_barbell();
        let mut d = OverlayDelta::new();
        d.remove_edge(NodeId(0), NodeId(21)); // not an edge of the barbell
        let _ = d.materialize(&g);
    }

    #[test]
    fn equality_ignores_cancelled_index_leftovers() {
        let mut a = OverlayDelta::new();
        a.remove_edge(NodeId(0), NodeId(1));
        // `b` records and then cancels an unrelated edge: logically equal.
        let mut b = OverlayDelta::new();
        b.remove_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(5), NodeId(6));
        b.remove_edge(NodeId(5), NodeId(6));
        assert_eq!(a, b);
        b.add_edge(NodeId(2), NodeId(3));
        assert_ne!(a, b);
    }

    #[test]
    fn edge_iterators_are_canonical() {
        let mut d = OverlayDelta::new();
        d.remove_edge(NodeId(9), NodeId(2));
        d.add_edge(NodeId(7), NodeId(3));
        let removed: Vec<Edge> = d.removed_edges().collect();
        let added: Vec<Edge> = d.added_edges().collect();
        assert_eq!(removed, vec![Edge::new(NodeId(2), NodeId(9))]);
        assert_eq!(added, vec![Edge::new(NodeId(3), NodeId(7))]);
    }
}
