//! The overlay delta: the virtual topology the MTO walk actually follows.
//!
//! The third party cannot touch the real graph; it maintains a *delta* —
//! removed and added edges — and derives the overlay neighborhood
//! `N*(v)` on demand from the cached interface response. Materializing the
//! full overlay graph `G*` (for spectral evaluation, Fig 10) replays the
//! delta onto the base topology.

use std::collections::{BTreeSet, HashMap};

use mto_graph::{Edge, Graph, NodeId};

/// Removed/added edge sets with per-endpoint indexes.
///
/// Equality compares the removed/added *sets* (the per-endpoint indexes
/// are derived data) — `mto-serve` uses it to verify that a resumed
/// session replayed its way back to exactly the snapshotted overlay.
#[derive(Clone, Debug, Default)]
pub struct OverlayDelta {
    removed: BTreeSet<Edge>,
    added: BTreeSet<Edge>,
    removed_at: HashMap<NodeId, BTreeSet<NodeId>>,
    added_at: HashMap<NodeId, BTreeSet<NodeId>>,
}

impl OverlayDelta {
    /// Empty delta: the overlay equals the base graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes an edge from the overlay. Removing an edge that the delta
    /// previously *added* cancels the addition instead.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) {
        let e = Edge::new(u, v);
        if self.added.remove(&e) {
            detach(&mut self.added_at, u, v);
        } else if self.removed.insert(e) {
            attach(&mut self.removed_at, u, v);
        }
    }

    /// Adds an edge to the overlay. Adding an edge the delta previously
    /// *removed* cancels the removal instead.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        let e = Edge::new(u, v);
        if self.removed.remove(&e) {
            detach(&mut self.removed_at, u, v);
        } else if self.added.insert(e) {
            attach(&mut self.added_at, u, v);
        }
    }

    /// Whether the delta marks `(u, v)` removed.
    pub fn is_removed(&self, u: NodeId, v: NodeId) -> bool {
        self.removed.contains(&Edge::new(u, v))
    }

    /// Whether the delta marks `(u, v)` added.
    pub fn is_added(&self, u: NodeId, v: NodeId) -> bool {
        self.added.contains(&Edge::new(u, v))
    }

    /// Whether the overlay contains `(u, v)` given that the base graph
    /// does (`base_has`).
    pub fn has_edge(&self, base_has: bool, u: NodeId, v: NodeId) -> bool {
        if base_has {
            !self.is_removed(u, v)
        } else {
            self.is_added(u, v)
        }
    }

    /// Number of removed edges.
    pub fn num_removed(&self) -> usize {
        self.removed.len()
    }

    /// Number of added edges.
    pub fn num_added(&self) -> usize {
        self.added.len()
    }

    /// Removed edges, canonical order.
    pub fn removed_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.removed.iter().copied()
    }

    /// Added edges, canonical order.
    pub fn added_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.added.iter().copied()
    }

    /// Overlay neighborhood `N*(v)`: the base neighborhood minus removed
    /// plus added, sorted.
    pub fn adjust_neighbors(&self, v: NodeId, base: &[NodeId]) -> Vec<NodeId> {
        let removed = self.removed_at.get(&v);
        let added = self.added_at.get(&v);
        if removed.is_none() && added.is_none() {
            return base.to_vec();
        }
        let mut out: Vec<NodeId> =
            base.iter().copied().filter(|&u| !removed.is_some_and(|r| r.contains(&u))).collect();
        if let Some(add) = added {
            for &u in add {
                if let Err(pos) = out.binary_search(&u) {
                    out.insert(pos, u);
                }
            }
        }
        out
    }

    /// Overlay degree `k*_v` given the base degree.
    pub fn adjust_degree(&self, v: NodeId, base_degree: usize) -> usize {
        let removed = self.removed_at.get(&v).map_or(0, BTreeSet::len);
        let added = self.added_at.get(&v).map_or(0, BTreeSet::len);
        base_degree + added - removed
    }

    /// Materializes the overlay graph `G* = (V, (E \ removed) ∪ added)`.
    ///
    /// # Panics
    /// Panics if the delta is inconsistent with the base graph (removing an
    /// absent edge or adding a present one) — which indicates the delta was
    /// built against a different topology.
    pub fn materialize(&self, base: &Graph) -> Graph {
        let mut g = base.clone();
        for e in &self.removed {
            g.remove_edge(e.small(), e.large()).expect("removed edge must exist in the base graph");
        }
        for e in &self.added {
            g.add_edge(e.small(), e.large())
                .expect("added edge must be absent from the base graph");
        }
        g
    }
}

impl PartialEq for OverlayDelta {
    fn eq(&self, other: &Self) -> bool {
        // Compare the canonical edge sets only: the per-endpoint indexes
        // may hold empty leftovers after cancellations.
        self.removed == other.removed && self.added == other.added
    }
}

impl Eq for OverlayDelta {}

fn attach(index: &mut HashMap<NodeId, BTreeSet<NodeId>>, u: NodeId, v: NodeId) {
    index.entry(u).or_default().insert(v);
    index.entry(v).or_default().insert(u);
}

fn detach(index: &mut HashMap<NodeId, BTreeSet<NodeId>>, u: NodeId, v: NodeId) {
    if let Some(s) = index.get_mut(&u) {
        s.remove(&v);
    }
    if let Some(s) = index.get_mut(&v) {
        s.remove(&u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::generators::paper_barbell;

    fn ids(raw: &[u32]) -> Vec<NodeId> {
        raw.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn empty_delta_is_identity() {
        let d = OverlayDelta::new();
        let base = ids(&[1, 2, 3]);
        assert_eq!(d.adjust_neighbors(NodeId(0), &base), base);
        assert_eq!(d.adjust_degree(NodeId(0), 3), 3);
        assert_eq!(d.num_removed() + d.num_added(), 0);
    }

    #[test]
    fn removal_hides_neighbors() {
        let mut d = OverlayDelta::new();
        d.remove_edge(NodeId(0), NodeId(2));
        assert!(d.is_removed(NodeId(2), NodeId(0)), "orientation-free");
        assert_eq!(d.adjust_neighbors(NodeId(0), &ids(&[1, 2, 3])), ids(&[1, 3]));
        assert_eq!(d.adjust_neighbors(NodeId(2), &ids(&[0, 5])), ids(&[5]));
        assert_eq!(d.adjust_degree(NodeId(0), 3), 2);
    }

    #[test]
    fn addition_inserts_sorted() {
        let mut d = OverlayDelta::new();
        d.add_edge(NodeId(0), NodeId(4));
        d.add_edge(NodeId(0), NodeId(2));
        assert_eq!(d.adjust_neighbors(NodeId(0), &ids(&[1, 3])), ids(&[1, 2, 3, 4]));
        assert_eq!(d.adjust_degree(NodeId(0), 2), 4);
    }

    #[test]
    fn add_then_remove_cancels() {
        let mut d = OverlayDelta::new();
        d.add_edge(NodeId(0), NodeId(9));
        d.remove_edge(NodeId(9), NodeId(0));
        assert_eq!(d.num_added(), 0);
        assert_eq!(d.num_removed(), 0);
        assert_eq!(d.adjust_neighbors(NodeId(0), &ids(&[1])), ids(&[1]));
    }

    #[test]
    fn remove_then_add_cancels() {
        let mut d = OverlayDelta::new();
        d.remove_edge(NodeId(0), NodeId(1));
        d.add_edge(NodeId(0), NodeId(1));
        assert_eq!(d.num_removed(), 0);
        assert_eq!(d.num_added(), 0);
        assert_eq!(d.adjust_neighbors(NodeId(0), &ids(&[1, 2])), ids(&[1, 2]));
    }

    #[test]
    fn double_removal_is_idempotent() {
        let mut d = OverlayDelta::new();
        d.remove_edge(NodeId(0), NodeId(1));
        d.remove_edge(NodeId(0), NodeId(1));
        assert_eq!(d.num_removed(), 1);
        d.add_edge(NodeId(0), NodeId(1));
        assert_eq!(d.num_removed(), 0, "one addition cancels the single record");
    }

    #[test]
    fn has_edge_combines_base_and_delta() {
        let mut d = OverlayDelta::new();
        d.remove_edge(NodeId(0), NodeId(1));
        d.add_edge(NodeId(0), NodeId(5));
        assert!(!d.has_edge(true, NodeId(0), NodeId(1)), "removed");
        assert!(d.has_edge(true, NodeId(0), NodeId(2)), "untouched");
        assert!(d.has_edge(false, NodeId(0), NodeId(5)), "added");
        assert!(!d.has_edge(false, NodeId(0), NodeId(7)), "never existed");
    }

    #[test]
    fn replacement_pattern_updates_three_nodes() {
        // Replacement e_uv → e_uw: remove (u,v), add (u,w).
        let (u, v, w) = (NodeId(1), NodeId(5), NodeId(7));
        let mut d = OverlayDelta::new();
        d.remove_edge(u, v);
        d.add_edge(u, w);
        assert_eq!(d.adjust_degree(u, 3), 3, "u keeps its degree");
        assert_eq!(d.adjust_degree(v, 3), 2, "pivot loses one");
        assert_eq!(d.adjust_degree(w, 4), 5, "target gains one");
    }

    #[test]
    fn materialize_applies_delta() {
        let g = paper_barbell();
        let mut d = OverlayDelta::new();
        d.remove_edge(NodeId(1), NodeId(2));
        d.add_edge(NodeId(1), NodeId(12));
        let overlay = d.materialize(&g);
        assert_eq!(overlay.num_edges(), g.num_edges());
        assert!(!overlay.has_edge(NodeId(1), NodeId(2)));
        assert!(overlay.has_edge(NodeId(1), NodeId(12)));
        overlay.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "must exist in the base graph")]
    fn materialize_rejects_foreign_delta() {
        let g = paper_barbell();
        let mut d = OverlayDelta::new();
        d.remove_edge(NodeId(0), NodeId(21)); // not an edge of the barbell
        let _ = d.materialize(&g);
    }

    #[test]
    fn equality_ignores_cancelled_index_leftovers() {
        let mut a = OverlayDelta::new();
        a.remove_edge(NodeId(0), NodeId(1));
        // `b` records and then cancels an unrelated edge: logically equal.
        let mut b = OverlayDelta::new();
        b.remove_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(5), NodeId(6));
        b.remove_edge(NodeId(5), NodeId(6));
        assert_eq!(a, b);
        b.add_edge(NodeId(2), NodeId(3));
        assert_ne!(a, b);
    }

    #[test]
    fn edge_iterators_are_canonical() {
        let mut d = OverlayDelta::new();
        d.remove_edge(NodeId(9), NodeId(2));
        d.add_edge(NodeId(7), NodeId(3));
        let removed: Vec<Edge> = d.removed_edges().collect();
        let added: Vec<Edge> = d.added_edges().collect();
        assert_eq!(removed, vec![Edge::new(NodeId(2), NodeId(9))]);
        assert_eq!(added, vec![Edge::new(NodeId(3), NodeId(7))]);
    }
}
