//! Conditional edge replacement: Theorem 4.
//!
//! If a pivot node `v` has degree exactly 3 and `u, w ∈ N(v)`, replacing
//! `e_uv` by `e_uw` never decreases the conductance and may increase it
//! (the paper's proof: `e_uv` and `e_vw` cannot both be cross-cutting, so
//! if `e_uv` was cross-cutting, `e_uw` is too — no loss; if it wasn't, the
//! new edge might be — possible gain). Degree 3 is the *only* pivot degree
//! with this guarantee (Corollary 2): for `k_v ≥ 4` both `e_uv` and `e_wv`
//! can be cross-cutting and the replacement can destroy one of them.
//!
//! A valid replacement must also keep the overlay a simple graph: `w ≠ u`
//! and `e_uw` not already present.

use mto_graph::NodeId;

/// The degree a pivot must have for Theorem 4 to apply.
pub const PIVOT_DEGREE: usize = 3;

/// A concrete replacement decision: remove `(u, v)`, add `(u, w)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Replacement {
    /// The walker's current node (kept endpoint).
    pub u: NodeId,
    /// The degree-3 pivot losing the edge.
    pub v: NodeId,
    /// The pivot's neighbor gaining the edge.
    pub w: NodeId,
}

/// Why a candidate replacement was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplacementRejection {
    /// Pivot degree is not exactly [`PIVOT_DEGREE`].
    WrongPivotDegree(usize),
    /// `u` is not adjacent to the pivot.
    NotAdjacent,
    /// No eligible `w` exists (all candidates equal `u` or already linked
    /// to `u`).
    NoEligibleTarget,
}

/// Enumerates the eligible replacement targets `w` for pivot `v` seen from
/// `u`: neighbors of `v` other than `u` that are not already adjacent to
/// `u` in the overlay.
///
/// `pivot_neighbors` is `N*(v)` in the overlay; `is_u_neighbor` tests
/// overlay adjacency to `u` (including any previously added edges).
pub fn eligible_targets(
    u: NodeId,
    pivot_neighbors: &[NodeId],
    mut is_u_neighbor: impl FnMut(NodeId) -> bool,
) -> Vec<NodeId> {
    pivot_neighbors.iter().copied().filter(|&w| w != u && !is_u_neighbor(w)).collect()
}

/// Validates and constructs a replacement.
///
/// * `u` — current node, must be in `pivot_neighbors`;
/// * `pivot` / `pivot_neighbors` — the freshly queried candidate and its
///   overlay neighborhood;
/// * `choose` — picks one target among the eligible (callers pass an RNG
///   closure; tests pass deterministic selectors).
pub fn plan_replacement(
    u: NodeId,
    pivot: NodeId,
    pivot_neighbors: &[NodeId],
    is_u_neighbor: impl FnMut(NodeId) -> bool,
    choose: impl FnOnce(&[NodeId]) -> NodeId,
) -> Result<Replacement, ReplacementRejection> {
    if pivot_neighbors.len() != PIVOT_DEGREE {
        return Err(ReplacementRejection::WrongPivotDegree(pivot_neighbors.len()));
    }
    if !pivot_neighbors.contains(&u) {
        return Err(ReplacementRejection::NotAdjacent);
    }
    let targets = eligible_targets(u, pivot_neighbors, is_u_neighbor);
    if targets.is_empty() {
        return Err(ReplacementRejection::NoEligibleTarget);
    }
    let w = choose(&targets);
    debug_assert!(targets.contains(&w), "choose must pick an eligible target");
    Ok(Replacement { u, v: pivot, w })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn basic_replacement_plan() {
        // Pivot 5 with neighbors {1, 2, 3}; u = 1; u's only neighbor is 5.
        let r =
            plan_replacement(NodeId(1), NodeId(5), &n(&[1, 2, 3]), |_| false, |targets| targets[0])
                .unwrap();
        assert_eq!(r, Replacement { u: NodeId(1), v: NodeId(5), w: NodeId(2) });
    }

    #[test]
    fn pivot_degree_must_be_exactly_three() {
        let err =
            plan_replacement(NodeId(1), NodeId(5), &n(&[1, 2]), |_| false, |t| t[0]).unwrap_err();
        assert_eq!(err, ReplacementRejection::WrongPivotDegree(2));
        let err = plan_replacement(NodeId(1), NodeId(5), &n(&[1, 2, 3, 4]), |_| false, |t| t[0])
            .unwrap_err();
        assert_eq!(err, ReplacementRejection::WrongPivotDegree(4));
    }

    #[test]
    fn u_must_be_a_pivot_neighbor() {
        let err = plan_replacement(NodeId(9), NodeId(5), &n(&[1, 2, 3]), |_| false, |t| t[0])
            .unwrap_err();
        assert_eq!(err, ReplacementRejection::NotAdjacent);
    }

    #[test]
    fn existing_edges_are_not_duplicated() {
        // u=1 already adjacent to 2; only 3 remains eligible.
        let r = plan_replacement(
            NodeId(1),
            NodeId(5),
            &n(&[1, 2, 3]),
            |w| w == NodeId(2),
            |targets| {
                assert_eq!(targets, &[NodeId(3)]);
                targets[0]
            },
        )
        .unwrap();
        assert_eq!(r.w, NodeId(3));
    }

    #[test]
    fn all_targets_blocked_is_rejected() {
        let err =
            plan_replacement(NodeId(1), NodeId(5), &n(&[1, 2, 3]), |_| true, |t| t[0]).unwrap_err();
        assert_eq!(err, ReplacementRejection::NoEligibleTarget);
    }

    #[test]
    fn eligible_targets_excludes_u_itself() {
        let t = eligible_targets(NodeId(2), &n(&[1, 2, 3]), |_| false);
        assert_eq!(t, n(&[1, 3]));
    }

    #[test]
    fn paper_running_example_shape() {
        // Running example (Section III-C): pivot u with degree 3 after
        // removals, neighbors {r, v_bridge, s}; replacing e_ur with e_rv.
        // Our orientation: walker at r, pivot u, target v.
        let (r, u, v, s) = (NodeId(1), NodeId(0), NodeId(11), NodeId(2));
        let plan = plan_replacement(
            r,
            u,
            &[r, s, v],
            |_| false,
            |targets| {
                // Choose the bridge peer — creates a second cross-clique edge.
                assert!(targets.contains(&v));
                v
            },
        )
        .unwrap();
        assert_eq!(plan, Replacement { u: r, v: u, w: v });
    }
}
