//! On-the-fly topology modification: the removal and replacement rules of
//! Section III and the overlay bookkeeping that makes them virtual.

pub mod overlay;
pub mod removal;
pub mod replacement;

pub use overlay::OverlayDelta;
pub use removal::{
    is_removable_from_neighborhoods, is_removable_with_history, removal_criterion,
    removal_criterion_extended,
};
pub use replacement::{
    eligible_targets, plan_replacement, Replacement, ReplacementRejection, PIVOT_DEGREE,
};

use crate::mto::CriterionView;
use mto_graph::Graph;

/// Applies Theorem 3 to every edge of a fully known graph (canonical edge
/// order), producing the overlay `G*` of the paper's running example.
///
/// * [`CriterionView::Original`] — the criterion reads the *original*
///   common-neighbor counts and degrees (what the interface returns); only
///   the `min_degree` guard stops the thinning. This reproduces the heavy
///   removal of the paper's Fig 1 `G*` and its `Φ(G*) ≈ 0.053`.
/// * [`CriterionView::Overlay`] — the criterion re-reads the current
///   overlay and iterates to a fixed point; removal self-limits as common
///   counts shrink (conservative reading of Theorem 3).
pub fn materialize_removal_overlay_with(
    g: &Graph,
    view: CriterionView,
    min_degree: usize,
) -> Graph {
    let mut overlay = g.clone();
    match view {
        CriterionView::Original => {
            let edges: Vec<_> = g.edges().collect();
            for e in edges {
                let (u, v) = e.endpoints();
                // Guards mirror the sampler's: min overlay degree, plus a
                // surviving u–w–v path so connectivity is preserved.
                if overlay.degree(u) <= min_degree
                    || overlay.degree(v) <= min_degree
                    || overlay.common_neighbor_count(u, v) == 0
                {
                    continue;
                }
                let common = g.common_neighbor_count(u, v);
                if removal_criterion(common, g.degree(u), g.degree(v)) {
                    overlay.remove_edge(u, v).expect("edge came from the edge list");
                }
            }
        }
        CriterionView::Overlay => {
            let mut changed = true;
            while changed {
                changed = false;
                let edges: Vec<_> = overlay.edges().collect();
                for e in edges {
                    let (u, v) = e.endpoints();
                    if !overlay.has_edge(u, v)
                        || overlay.degree(u) <= min_degree
                        || overlay.degree(v) <= min_degree
                    {
                        continue;
                    }
                    let common = overlay.common_neighbor_count(u, v);
                    if common == 0 {
                        continue; // connectivity guard
                    }
                    if removal_criterion(common, overlay.degree(u), overlay.degree(v)) {
                        overlay.remove_edge(u, v).expect("edge existence just checked");
                        changed = true;
                    }
                }
            }
        }
    }
    overlay
}

/// [`materialize_removal_overlay_with`] under the paper-faithful defaults
/// (original-counts criterion, minimum overlay degree 2).
pub fn materialize_removal_overlay(g: &Graph) -> Graph {
    materialize_removal_overlay_with(g, CriterionView::Original, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::algo::connected_components;
    use mto_graph::generators::{complete_graph, cycle_graph, paper_barbell};

    #[test]
    fn barbell_overlay_keeps_bridge_and_connectivity() {
        let g = paper_barbell();
        let overlay = materialize_removal_overlay(&g);
        assert!(overlay.num_edges() < g.num_edges(), "cliques must thin out");
        assert!(overlay.has_edge(mto_graph::NodeId(0), mto_graph::NodeId(11)));
        assert_eq!(connected_components(&overlay).num_components(), 1);
        assert!(overlay.min_degree() >= 1);
    }

    #[test]
    fn barbell_overlay_conductance_improves() {
        use mto_spectral::conductance::exact_conductance;
        let g = paper_barbell();
        let overlay = materialize_removal_overlay(&g);
        let before = exact_conductance(&g).phi;
        let after = exact_conductance(&overlay).phi;
        // Paper running example: 0.018 → ~0.053 (exact value depends on
        // which spanning structure survives; the direction and rough factor
        // must hold).
        assert!(after > 2.0 * before, "Φ should improve ~3x: before {before}, after {after}");
    }

    #[test]
    fn cycle_overlay_is_unchanged() {
        let g = cycle_graph(10);
        let overlay = materialize_removal_overlay(&g);
        assert_eq!(overlay.num_edges(), g.num_edges());
    }

    #[test]
    fn complete_graph_thins_to_connected_core() {
        let g = complete_graph(9);
        let overlay = materialize_removal_overlay(&g);
        assert!(overlay.num_edges() < g.num_edges());
        assert_eq!(connected_components(&overlay).num_components(), 1);
    }
}
