//! Deterministic identification of non-cross-cutting edges: the removal
//! criteria of Theorem 3 and its Theorem 5 extension.
//!
//! Theorem 3 (Edge Removal Criteria): for `e_uv ∈ E`, if
//!
//! ```text
//! ⌈|N(u) ∩ N(v)| / 2⌉ + 1  >  max(k_u, k_v) / 2
//! ```
//!
//! then `e_uv` is not a cross-cutting edge and removing it from the overlay
//! cannot decrease — and typically increases — the conductance. The
//! criterion is *tight* (Corollary 1): whenever it fails, a graph exists in
//! which the edge is cross-cutting.
//!
//! Theorem 5 adds free knowledge from the walker's history: with
//! `N* = {w ∈ N(u) ∩ N(v) : k_w known, 2 ≤ k_w ≤ 3}`,
//!
//! ```text
//! ⌈(|N(u) ∩ N(v)| − |N*|) / 2⌉ + 1 + ½ Σ_{w∈N*} (4 − k_w)  >  max(k_u, k_v) / 2
//! ```
//!
//! All comparisons are done in integers (multiplied by 2) so no floating
//! point is involved.

/// Theorem 3 criterion from raw counts.
///
/// `common` is `|N(u) ∩ N(v)|`; `ku`, `kv` the endpoint degrees. Returns
/// `true` when the edge is provably non-cross-cutting.
#[inline]
pub fn removal_criterion(common: usize, ku: usize, kv: usize) -> bool {
    // ⌈c/2⌉ + 1 > max/2  ⟺  2⌈c/2⌉ + 2 > max (all integers).
    2 * (common.div_ceil(2) + 1) > ku.max(kv)
}

/// Theorem 5 criterion from raw counts plus the known degrees of common
/// neighbors in `N*`.
///
/// `nstar_degrees` must contain only degrees in `{2, 3}` of *distinct*
/// common neighbors; `common` counts the full intersection including them.
///
/// # Panics
/// Panics if any `N*` degree is outside `{2, 3}` or `N*` is larger than
/// the intersection.
#[inline]
pub fn removal_criterion_extended(
    common: usize,
    nstar_degrees: &[usize],
    ku: usize,
    kv: usize,
) -> bool {
    let s = nstar_degrees.len();
    assert!(s <= common, "N* ⊆ N(u)∩N(v) requires |N*| <= common");
    let mut bonus = 0usize;
    for &kw in nstar_degrees {
        assert!((2..=3).contains(&kw), "N* degrees must be 2 or 3, got {kw}");
        bonus += 4 - kw;
    }
    // ⌈(c−s)/2⌉ + 1 + ½·bonus > max/2 ⟺ 2⌈(c−s)/2⌉ + 2 + bonus > max.
    2 * ((common - s).div_ceil(2) + 1) + bonus > ku.max(kv)
}

/// Evaluates Theorem 3 directly on neighbor lists (both sorted). Intended
/// for callers holding raw interface responses.
///
/// Exploits monotonicity: the criterion only improves as `common` grows,
/// so the intersection scan stops as soon as the outcome is decided —
/// either the needed count is reached (removable) or not enough elements
/// remain to reach it (not removable). The answer is identical to counting
/// the full intersection first.
pub fn is_removable_from_neighborhoods(nu: &[mto_graph::NodeId], nv: &[mto_graph::NodeId]) -> bool {
    let max = nu.len().max(nv.len());
    // Smallest intersection size satisfying 2(⌈c/2⌉+1) > max.
    let needed = if max / 2 == 0 { 0 } else { 2 * (max / 2) - 1 };
    if needed == 0 {
        return true;
    }
    if nu.len().min(nv.len()) < needed {
        return false;
    }
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < nu.len() && j < nv.len() {
        if n + (nu.len() - i).min(nv.len() - j) < needed {
            return false;
        }
        match nu[i].cmp(&nv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                if n >= needed {
                    return true;
                }
                i += 1;
                j += 1;
            }
        }
    }
    false
}

/// Theorem 5 with the *optimal choice of `N*`*: given `common` total
/// intersections of which `s2` have known degree 2 and `s3` known degree
/// 3, returns whether any admissible subset of `N*` certifies removal.
///
/// Including a degree-2 neighbor never hurts (bonus 2 vs a ceiling loss of
/// at most 2), so all are included. Including degree-3 neighbors swings the
/// parity of the ceiling term: adding two is always neutral, so only
/// `t ∈ {0, 1}` need be tried.
pub fn best_extended_criterion(common: usize, s2: usize, s3: usize, ku: usize, kv: usize) -> bool {
    assert!(s2 + s3 <= common, "N* candidates exceed the intersection");
    let mut nstar = vec![2usize; s2];
    for t3 in 0..=s3.min(1) {
        nstar.resize(s2 + t3, 3);
        if removal_criterion_extended(common, &nstar, ku, kv) {
            return true;
        }
    }
    false
}

/// Theorem 5 on neighbor lists plus a degree oracle (the walker's local
/// history); `degree_of` must return `None` for unknown nodes, and is only
/// consulted for common neighbors. Uses [`best_extended_criterion`] so the
/// extension can only strengthen Theorem 3.
pub fn is_removable_with_history(
    nu: &[mto_graph::NodeId],
    nv: &[mto_graph::NodeId],
    mut degree_of: impl FnMut(mto_graph::NodeId) -> Option<usize>,
) -> bool {
    let mut common = 0usize;
    let mut s2 = 0usize;
    let mut s3 = 0usize;
    let (mut i, mut j) = (0, 0);
    while i < nu.len() && j < nv.len() {
        match nu[i].cmp(&nv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                match degree_of(nu[i]) {
                    Some(2) => s2 += 1,
                    Some(3) => s3 += 1,
                    _ => {}
                }
                i += 1;
                j += 1;
            }
        }
    }
    best_extended_criterion(common, s2, s3, nu.len(), nv.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::generators::paper_barbell;
    use mto_graph::NodeId;

    #[test]
    fn barbell_intra_clique_edges_are_removable() {
        // Two non-bridge clique nodes: k=10 each, 9 common neighbors.
        assert!(removal_criterion(9, 10, 10));
        // Bridge endpoint to clique node: k=11 vs 10, still 9 common.
        assert!(removal_criterion(9, 11, 10));
    }

    #[test]
    fn barbell_bridge_is_not_removable() {
        // The bridge endpoints share no neighbors.
        assert!(!removal_criterion(0, 11, 11));
    }

    #[test]
    fn criterion_boundary_is_strict() {
        // ⌈4/2⌉+1 = 3 vs max/2 = 3: not strictly greater → not removable.
        assert!(!removal_criterion(4, 6, 6));
        // One more common neighbor tips it: ⌈5/2⌉+1 = 4 > 3.
        assert!(removal_criterion(5, 6, 6));
        // Or one less degree: ⌈4/2⌉+1 = 3 > 5/2.
        assert!(removal_criterion(4, 5, 5));
    }

    #[test]
    fn triangle_edges_are_removable() {
        // K3: common=1, k=2: ⌈1/2⌉+1 = 2 > 1. A triangle never carries the
        // only connection between communities once its third vertex exists.
        assert!(removal_criterion(1, 2, 2));
    }

    #[test]
    fn pendant_edges_are_not_removable() {
        assert!(!removal_criterion(0, 1, 5));
        assert!(!removal_criterion(0, 2, 2));
    }

    #[test]
    fn isolated_edge_is_the_degenerate_case() {
        // For k_u = k_v = 1 (an isolated K2 component) the paper's formula
        // literally fires: ⌈0/2⌉ + 1 = 1 > 1/2. The theorem's "drag u
        // across" proof produces an empty side there, so the sampler
        // guards this with its minimum-overlay-degree check rather than
        // bending the published criterion.
        assert!(removal_criterion(0, 1, 1));
    }

    #[test]
    fn asymmetric_degrees_use_the_max() {
        // common=3: lhs = 2(2+1) = 6; removable iff max degree < 6.
        assert!(removal_criterion(3, 5, 3));
        assert!(!removal_criterion(3, 6, 3));
    }

    #[test]
    fn extended_reduces_to_theorem3_without_history() {
        for common in 0..8 {
            for ku in 1..10 {
                for kv in 1..10 {
                    assert_eq!(
                        removal_criterion_extended(common, &[], ku, kv),
                        removal_criterion(common, ku, kv),
                        "mismatch at c={common}, ku={ku}, kv={kv}"
                    );
                }
            }
        }
    }

    #[test]
    fn extension_identifies_edges_theorem3_misses() {
        // Two common neighbors, both known degree-2, endpoints degree 4:
        // Thm 3: 2(⌈2/2⌉+1) = 4 > 4 fails.
        // Thm 5: 2(⌈0/2⌉+1) + (2+2) = 6 > 4 holds.
        assert!(!removal_criterion(2, 4, 4));
        assert!(removal_criterion_extended(2, &[2, 2], 4, 4));
    }

    #[test]
    fn extension_with_degree3_neighbors_is_weaker_than_degree2() {
        // Same shape, but the known neighbors have degree 3 (bonus 1 each):
        // 2(0+1) + (1+1) = 4 > 4 fails.
        assert!(!removal_criterion_extended(2, &[3, 3], 4, 4));
        // Mixed: 2 + (2+1) = 5 > 4 holds.
        assert!(removal_criterion_extended(2, &[2, 3], 4, 4));
    }

    #[test]
    fn raw_extended_formula_can_be_weaker_for_odd_counts() {
        // The literal Theorem 5 formula trades ⌈·⌉-rounding for an explicit
        // bonus; for odd intersections a degree-3 member costs more
        // rounding than its bonus pays: c=1, k=3.
        assert!(removal_criterion(1, 1, 3));
        assert!(!removal_criterion_extended(1, &[3], 1, 3));
    }

    #[test]
    fn best_extension_is_never_weaker_than_theorem3() {
        // With N* chosen optimally (the t ∈ {0,1} sweep), the extension
        // dominates Theorem 3 on the whole grid.
        for common in 1..8 {
            for ku in 1..12 {
                for kv in 1..12 {
                    if removal_criterion(common, ku, kv) {
                        for s2 in 0..=common {
                            for s3 in 0..=(common - s2) {
                                assert!(
                                    best_extended_criterion(common, s2, s3, ku, kv),
                                    "lost edge at c={common}, s2={s2}, s3={s3}, ku={ku}, kv={kv}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn best_extension_strictly_stronger_example() {
        // c=2 with both common neighbors of known degree 2, endpoints k=4:
        // Theorem 3 fails, the optimized extension succeeds.
        assert!(!removal_criterion(2, 4, 4));
        assert!(best_extended_criterion(2, 2, 0, 4, 4));
    }

    #[test]
    #[should_panic(expected = "must be 2 or 3")]
    fn extended_rejects_bad_nstar_degree() {
        let _ = removal_criterion_extended(3, &[4], 5, 5);
    }

    #[test]
    #[should_panic(expected = "|N*| <= common")]
    fn extended_rejects_oversized_nstar() {
        let _ = removal_criterion_extended(1, &[2, 2], 5, 5);
    }

    #[test]
    fn early_exit_wrapper_matches_the_naive_count() {
        // The early-exit scan must agree with "count fully, then test" on
        // every list shape, including the threshold boundaries.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2_000 {
            let ku = (next() % 14) as usize;
            let kv = (next() % 14) as usize;
            let mut nu: Vec<NodeId> = (0..ku).map(|_| NodeId((next() % 24) as u32)).collect();
            let mut nv: Vec<NodeId> = (0..kv).map(|_| NodeId((next() % 24) as u32)).collect();
            nu.sort_unstable();
            nu.dedup();
            nv.sort_unstable();
            nv.dedup();
            let common = nu.iter().filter(|u| nv.contains(u)).count();
            assert_eq!(
                is_removable_from_neighborhoods(&nu, &nv),
                removal_criterion(common, nu.len(), nv.len()),
                "mismatch at nu={nu:?} nv={nv:?}"
            );
        }
    }

    #[test]
    fn neighborhood_wrapper_agrees_with_graph_counts() {
        let g = paper_barbell();
        let nu = g.neighbors(NodeId(1));
        let nv = g.neighbors(NodeId(2));
        assert!(is_removable_from_neighborhoods(nu, nv));
        let bridge_u = g.neighbors(NodeId(0));
        let bridge_v = g.neighbors(NodeId(11));
        assert!(!is_removable_from_neighborhoods(bridge_u, bridge_v));
    }

    #[test]
    fn history_wrapper_uses_only_known_degrees() {
        // Path 0-1-2-3 plus chord 1-3 and edge 0-2... construct the
        // Fig 5-style case: u=0, v=1 adjacent; common neighbor w=2 with
        // k_2 = 2 known.
        let g =
            mto_graph::Graph::from_edges([(0u32, 1u32), (0, 2), (1, 2), (0, 3), (1, 4)]).unwrap();
        let nu = g.neighbors(NodeId(0)); // {1,2,3}
        let nv = g.neighbors(NodeId(1)); // {0,2,4}
                                         // Thm 3: common=1, max k=3: 2(1+1)=4 > 3 → already removable.
        assert!(is_removable_from_neighborhoods(nu, nv));
        // With no history the extended path gives the same answer.
        assert!(is_removable_with_history(nu, nv, |_| None));
        // With k_2=2 known the margin only grows.
        assert!(is_removable_with_history(nu, nv, |w| (w == NodeId(2)).then_some(2)));
    }

    #[test]
    fn history_oracle_is_consulted_only_for_common_neighbors() {
        let g =
            mto_graph::Graph::from_edges([(0u32, 1u32), (0, 2), (1, 2), (0, 3), (1, 4)]).unwrap();
        let mut asked = Vec::new();
        let _ = is_removable_with_history(g.neighbors(NodeId(0)), g.neighbors(NodeId(1)), |w| {
            asked.push(w);
            None
        });
        assert_eq!(asked, vec![NodeId(2)], "only the common neighbor is looked up");
    }
}
