//! Property tests for the graph substrate: structural invariants under
//! random construction and mutation sequences.

use mto_graph::algo::{bfs_distances, connected_components, UNREACHABLE};
use mto_graph::generators::gnp_graph;
use mto_graph::{CsrGraph, Graph, GraphBuilder, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arbitrary edit: add or remove an edge between small node ids.
#[derive(Clone, Debug)]
enum Edit {
    Add(u32, u32),
    Remove(u32, u32),
}

fn edit_strategy(n: u32) -> impl Strategy<Value = Edit> {
    (0..n, 0..n, any::<bool>()).prop_map(
        |(u, v, add)| {
            if add {
                Edit::Add(u, v)
            } else {
                Edit::Remove(u, v)
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any sequence of add/remove operations keeps the graph valid:
    /// sorted symmetric adjacency, accurate edge count, no loops.
    #[test]
    fn random_edit_sequences_preserve_invariants(
        edits in proptest::collection::vec(edit_strategy(12), 0..200)
    ) {
        let mut g = Graph::with_nodes(12);
        // A shadow set of canonical pairs mirrors what the graph should hold.
        let mut shadow = std::collections::BTreeSet::new();
        for e in edits {
            match e {
                Edit::Add(u, v) => {
                    if u == v {
                        prop_assert!(g.add_edge(NodeId(u), NodeId(v)).is_err());
                    } else {
                        let key = (u.min(v), u.max(v));
                        let inserted = g.add_edge_if_absent(NodeId(u), NodeId(v)).unwrap();
                        prop_assert_eq!(inserted, shadow.insert(key));
                    }
                }
                Edit::Remove(u, v) => {
                    let key = (u.min(v), u.max(v));
                    let existed = shadow.remove(&key);
                    let result = g.remove_edge(NodeId(u), NodeId(v));
                    prop_assert_eq!(result.is_ok(), existed && u != v);
                }
            }
        }
        g.validate().unwrap();
        prop_assert_eq!(g.num_edges(), shadow.len());
        for &(u, v) in &shadow {
            prop_assert!(g.has_edge(NodeId(u), NodeId(v)));
        }
    }

    /// Builder construction matches incremental construction exactly,
    /// regardless of duplicates and orientation noise.
    #[test]
    fn builder_equals_incremental(
        pairs in proptest::collection::vec((0u32..20, 0u32..20), 0..120)
    ) {
        let mut b = GraphBuilder::with_nodes(20);
        let mut incremental = Graph::with_nodes(20);
        for &(u, v) in &pairs {
            b.add_edge_u32(u, v);
            if u != v {
                let _ = incremental.add_edge_if_absent(NodeId(u), NodeId(v));
            }
        }
        let built = b.build();
        prop_assert_eq!(built.num_edges(), incremental.num_edges());
        for v in built.nodes() {
            prop_assert_eq!(built.neighbors(v), incremental.neighbors(v));
        }
    }

    /// CSR freeze/thaw is an exact round trip.
    #[test]
    fn csr_roundtrip(seed in 0u64..500, n in 2usize..40, p in 0.02f64..0.6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gnp_graph(n, p, &mut rng);
        let csr = CsrGraph::from_graph(&g);
        prop_assert_eq!(csr.num_edges(), g.num_edges());
        prop_assert_eq!(csr.volume(), g.volume());
        let thawed = csr.to_graph();
        thawed.validate().unwrap();
        for v in g.nodes() {
            prop_assert_eq!(thawed.neighbors(v), g.neighbors(v));
        }
    }

    /// Component sizes always sum to the node count, and BFS reaches
    /// exactly the component of its source.
    #[test]
    fn components_and_bfs_agree(seed in 0u64..500, n in 1usize..40, p in 0.0f64..0.3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gnp_graph(n, p, &mut rng);
        let comps = connected_components(&g);
        prop_assert_eq!(comps.sizes.iter().sum::<usize>(), n);
        let source = NodeId(0);
        let dist = bfs_distances(&g, source);
        let source_label = comps.labels[0];
        for v in 0..n {
            let same_component = comps.labels[v] == source_label;
            prop_assert_eq!(
                dist[v] != UNREACHABLE,
                same_component,
                "node {} reachability vs component mismatch", v
            );
        }
    }

    /// Common-neighbor counting is symmetric and bounded by both degrees.
    #[test]
    fn common_neighbors_symmetric(seed in 0u64..500, n in 2usize..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gnp_graph(n, 0.3, &mut rng);
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let c_uv = g.common_neighbor_count(u, v);
                prop_assert_eq!(c_uv, g.common_neighbor_count(v, u));
                prop_assert!(c_uv <= g.degree(u).min(g.degree(v)));
                prop_assert_eq!(c_uv, g.common_neighbors(u, v).len());
            }
        }
    }

    /// Degree sum equals twice the edge count (handshake lemma), and the
    /// edges iterator yields each edge exactly once.
    #[test]
    fn handshake_lemma(seed in 0u64..500, n in 1usize..50, p in 0.0f64..0.5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gnp_graph(n, p, &mut rng);
        let degree_sum: usize = g.degree_sequence().iter().sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        let edges: Vec<_> = g.edges().collect();
        prop_assert_eq!(edges.len(), g.num_edges());
        let unique: std::collections::BTreeSet<_> = edges.iter().collect();
        prop_assert_eq!(unique.len(), edges.len());
    }
}
