//! # mto-graph — graph substrate for the MTO-Sampler reproduction
//!
//! This crate provides everything topological the reproduction of
//! *"Faster Random Walks By Rewiring Online Social Networks On-The-Fly"*
//! (Zhou, Zhang, Gong & Das, ICDE 2013) needs:
//!
//! * [`Graph`] — a simple undirected graph with sorted adjacency, the model
//!   of Section II-A, plus the frozen [`CsrGraph`] for read-heavy walks;
//! * [`generators`] — the paper's barbell running example, the latent-space
//!   model of Section IV-B, and the Chung–Lu / SBM / Watts–Strogatz /
//!   Erdős–Rényi families used to synthesize dataset stand-ins;
//! * [`algo`] — BFS, connected components, the Table I 90% effective
//!   diameter, clustering and degree statistics;
//! * [`io`] — SNAP-format edge lists and the paper's mutual-edge
//!   directed→undirected conversion.
//!
//! Everything downstream (`mto-spectral`, `mto-osn`, `mto-core`) builds on
//! these types.
//!
//! ## Example
//!
//! ```
//! use mto_graph::generators::paper_barbell;
//!
//! let g = paper_barbell();
//! assert_eq!(g.num_nodes(), 22);
//! assert_eq!(g.num_edges(), 111);
//! // The bridge (0, 11) is the lone cross-cutting edge.
//! assert!(g.has_edge(mto_graph::NodeId(0), mto_graph::NodeId(11)));
//! ```

#![warn(missing_docs)]

pub mod algo;
mod builder;
mod csr;
mod error;
pub mod generators;
mod graph;
pub mod io;
mod node;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use error::{GraphError, Result};
pub use graph::Graph;
pub use node::{Edge, NodeId};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::algo::{connected_components, effective_diameter, largest_component};
    pub use crate::generators::paper_barbell;
    pub use crate::{CsrGraph, Edge, Graph, GraphBuilder, NodeId};
}
