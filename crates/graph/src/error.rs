//! Error type for graph construction and IO.

use std::fmt;
use std::io;

use crate::NodeId;

/// Errors raised by graph construction, mutation and (de)serialization.
#[derive(Debug)]
pub enum GraphError {
    /// A node id referenced a node outside the graph.
    NodeOutOfBounds {
        /// The offending id.
        node: NodeId,
        /// Number of nodes in the graph at the time.
        num_nodes: usize,
    },
    /// An edge `(u, u)` was supplied; the library models simple graphs.
    SelfLoop(NodeId),
    /// The same undirected edge was supplied twice to an operation that
    /// requires distinct edges.
    DuplicateEdge(NodeId, NodeId),
    /// An edge that was expected to exist is absent.
    MissingEdge(NodeId, NodeId),
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// Underlying IO failure while reading or writing an edge list.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, num_nodes } => {
                write!(f, "node {node} out of bounds for graph with {num_nodes} nodes")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v} is not allowed"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::MissingEdge(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
            GraphError::Parse { line, message } => {
                write!(f, "edge list parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfBounds { node: NodeId(9), num_nodes: 4 };
        assert!(e.to_string().contains("out of bounds"));
        assert!(GraphError::SelfLoop(NodeId(1)).to_string().contains("self-loop"));
        assert!(GraphError::DuplicateEdge(NodeId(1), NodeId(2)).to_string().contains("duplicate"));
        assert!(GraphError::MissingEdge(NodeId(1), NodeId(2)).to_string().contains("not exist"));
        let p = GraphError::Parse { line: 3, message: "bad token".into() };
        assert!(p.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error as _;
        let e: GraphError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        assert!(e.source().is_some());
        let s = GraphError::SelfLoop(NodeId(0));
        assert!(s.source().is_none());
    }
}
