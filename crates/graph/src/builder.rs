//! Forgiving bulk construction of graphs.
//!
//! Generators and edge-list readers produce streams of node pairs that may
//! contain duplicates, reversed duplicates and self-loops. [`GraphBuilder`]
//! accepts them all, canonicalizes, deduplicates, and produces a valid
//! [`Graph`] in one pass — far cheaper than incremental sorted insertion for
//! the multi-million-edge synthetic OSNs the experiments need.

use crate::graph::Graph;
use crate::node::{Edge, NodeId};

/// Accumulates edges permissively and builds a [`Graph`].
#[derive(Clone, Default)]
pub struct GraphBuilder {
    edges: Vec<Edge>,
    min_nodes: usize,
    dropped_self_loops: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder whose graph will have at least `n` nodes even if
    /// some of them end up isolated.
    pub fn with_nodes(n: usize) -> Self {
        GraphBuilder { edges: Vec::new(), min_nodes: n, dropped_self_loops: 0 }
    }

    /// Pre-allocates space for `m` edges.
    pub fn with_edge_capacity(mut self, m: usize) -> Self {
        self.edges.reserve(m);
        self
    }

    /// Ensures the final graph has at least `n` nodes.
    pub fn ensure_nodes(&mut self, n: usize) {
        self.min_nodes = self.min_nodes.max(n);
    }

    /// Adds an undirected edge. Self-loops are silently dropped (counted in
    /// [`GraphBuilder::dropped_self_loops`]); duplicates are deduplicated at
    /// build time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        if u == v {
            self.dropped_self_loops += 1;
            return;
        }
        self.edges.push(Edge::new(u, v));
    }

    /// Adds an edge given raw `u32` ids.
    pub fn add_edge_u32(&mut self, u: u32, v: u32) {
        self.add_edge(NodeId(u), NodeId(v));
    }

    /// Extends from an iterator of raw pairs.
    pub fn extend<I: IntoIterator<Item = (u32, u32)>>(&mut self, iter: I) {
        for (u, v) in iter {
            self.add_edge_u32(u, v);
        }
    }

    /// Number of self-loops dropped so far.
    pub fn dropped_self_loops(&self) -> usize {
        self.dropped_self_loops
    }

    /// Number of (possibly duplicated) edges accumulated so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Sorts, deduplicates, and materializes the graph.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let max_node = self.edges.iter().map(|e| e.large().index() + 1).max().unwrap_or(0);
        let n = max_node.max(self.min_nodes);

        // Two-pass CSR-style fill so each adjacency vector is allocated once
        // at its exact final size.
        let mut degree = vec![0usize; n];
        for e in &self.edges {
            degree[e.small().index()] += 1;
            degree[e.large().index()] += 1;
        }
        let mut adj: Vec<Vec<NodeId>> = degree.iter().map(|&d| Vec::with_capacity(d)).collect();
        for e in &self.edges {
            adj[e.small().index()].push(e.large());
            adj[e.large().index()].push(e.small());
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        let g = Graph::assemble(adj, self.edges.len());
        debug_assert!(g.validate().is_ok());
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_dedups_and_canonicalizes() {
        let mut b = GraphBuilder::new();
        b.add_edge_u32(0, 1);
        b.add_edge_u32(1, 0); // reversed duplicate
        b.add_edge_u32(0, 1); // exact duplicate
        b.add_edge_u32(2, 2); // self-loop dropped
        b.add_edge_u32(1, 2);
        assert_eq!(b.dropped_self_loops(), 1);
        assert_eq!(b.pending_edges(), 4);
        let g = b.build();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn builder_respects_min_nodes() {
        let mut b = GraphBuilder::with_nodes(10);
        b.add_edge_u32(0, 1);
        let g = b.build();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.degree(NodeId(9)), 0);
    }

    #[test]
    fn ensure_nodes_grows_only() {
        let mut b = GraphBuilder::with_nodes(5);
        b.ensure_nodes(3);
        b.ensure_nodes(8);
        let g = b.build();
        assert_eq!(g.num_nodes(), 8);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn extend_accepts_raw_pairs() {
        let mut b = GraphBuilder::new().with_edge_capacity(4);
        b.extend([(0, 1), (1, 2), (2, 3), (3, 0)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_nodes(), 4);
    }

    #[test]
    fn builder_matches_incremental_graph() {
        let pairs = [(0u32, 3u32), (3, 7), (7, 0), (1, 2), (2, 5), (5, 1), (4, 6)];
        let mut b = GraphBuilder::new();
        for &(u, v) in &pairs {
            b.add_edge_u32(u, v);
        }
        let built = b.build();
        let incremental = Graph::from_edges(pairs).unwrap();
        assert_eq!(built.num_nodes(), incremental.num_nodes());
        assert_eq!(built.num_edges(), incremental.num_edges());
        for v in built.nodes() {
            assert_eq!(built.neighbors(v), incremental.neighbors(v));
        }
    }
}
