//! The 90% effective diameter reported in the paper's Table I.
//!
//! SNAP defines the `q`-effective diameter as the interpolated number of
//! hops within which a fraction `q` of all connected node pairs lie. The
//! paper reports 4.8 for Epinions and 4.5 for the Slashdot snapshots; the
//! dataset stand-ins are calibrated to land nearby.
//!
//! Exact computation needs all-pairs BFS (`O(n·m)`), fine for tests; the
//! sampled variant BFSes from a random subset of sources, the standard
//! approximation used by SNAP itself.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::algo::bfs::{bfs_distances, UNREACHABLE};
use crate::graph::Graph;
use crate::node::NodeId;

/// Options for the sampled effective-diameter estimate.
#[derive(Clone, Copy, Debug)]
pub struct EffectiveDiameterOptions {
    /// Fraction of pairs to cover (SNAP convention: 0.9).
    pub quantile: f64,
    /// Number of BFS source nodes to sample.
    pub num_sources: usize,
}

impl Default for EffectiveDiameterOptions {
    fn default() -> Self {
        EffectiveDiameterOptions { quantile: 0.9, num_sources: 100 }
    }
}

/// Accumulates a hop-count histogram and converts it to the interpolated
/// effective diameter.
fn effective_from_histogram(hist: &[u64], quantile: f64) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = quantile * total as f64;
    let mut cum = 0u64;
    for (h, &count) in hist.iter().enumerate() {
        let prev = cum as f64;
        cum += count;
        if cum as f64 >= target {
            // Linear interpolation inside hop bucket `h` between the
            // cumulative counts at h-1 and h (SNAP's formula).
            let within = (target - prev) / count as f64;
            return (h as f64 - 1.0) + within;
        }
    }
    (hist.len() - 1) as f64
}

fn histogram_from_sources(g: &Graph, sources: &[NodeId], quantile: f64) -> f64 {
    let mut hist: Vec<u64> = Vec::new();
    for &s in sources {
        let dist = bfs_distances(g, s);
        for (v, &d) in dist.iter().enumerate() {
            if d == UNREACHABLE || d == 0 {
                continue;
            }
            // Count ordered pairs (s, v); the distribution over unordered
            // pairs is identical.
            let _ = v;
            let d = d as usize;
            if hist.len() <= d {
                hist.resize(d + 1, 0);
            }
            hist[d] += 1;
        }
    }
    effective_from_histogram(&hist, quantile)
}

/// Exact effective diameter over all connected pairs (all-sources BFS).
pub fn exact_effective_diameter(g: &Graph, quantile: f64) -> f64 {
    assert!((0.0..=1.0).contains(&quantile), "quantile {quantile} outside [0,1]");
    let sources: Vec<NodeId> = g.nodes().collect();
    histogram_from_sources(g, &sources, quantile)
}

/// Sampled effective diameter: BFS from `num_sources` random sources.
///
/// Matches [`exact_effective_diameter`] in distribution; with 100+ sources
/// the estimate is typically within a tenth of a hop on OSN-like graphs.
pub fn effective_diameter<R: Rng + ?Sized>(
    g: &Graph,
    opts: EffectiveDiameterOptions,
    rng: &mut R,
) -> f64 {
    assert!((0.0..=1.0).contains(&opts.quantile), "quantile outside [0,1]");
    let mut all: Vec<NodeId> = g.nodes().collect();
    if all.len() <= opts.num_sources {
        return histogram_from_sources(g, &all, opts.quantile);
    }
    all.shuffle(rng);
    all.truncate(opts.num_sources);
    histogram_from_sources(g, &all, opts.quantile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, cycle_graph, path_graph, star_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_effective_diameter_below_one() {
        // Every pair is at distance exactly 1; the 90th percentile
        // interpolates inside the first bucket: 0 + 0.9 = 0.9.
        let g = complete_graph(10);
        let d = exact_effective_diameter(&g, 0.9);
        assert!((d - 0.9).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn star_graph_concentrates_at_two_hops() {
        // Star S_n: hub-leaf pairs at distance 1, leaf-leaf at distance 2.
        // With n=21 (20 leaves): ordered pairs at d=1: 40, at d=2: 380.
        // 90% of 420 = 378 <= 40+380, interpolation lands inside bucket 2.
        let g = star_graph(21);
        let d = exact_effective_diameter(&g, 0.9);
        assert!(d > 1.5 && d < 2.0, "got {d}");
    }

    #[test]
    fn path_diameter_grows_linearly() {
        let short = exact_effective_diameter(&path_graph(10), 0.9);
        let long = exact_effective_diameter(&path_graph(40), 0.9);
        assert!(long > 2.5 * short, "short={short}, long={long}");
    }

    #[test]
    fn quantile_one_reaches_true_diameter_bucket() {
        let g = cycle_graph(8); // diameter 4
        let d = exact_effective_diameter(&g, 1.0);
        assert!(d > 3.0 && d <= 4.0, "got {d}");
    }

    #[test]
    fn sampled_matches_exact_when_sources_cover_graph() {
        let g = cycle_graph(12);
        let exact = exact_effective_diameter(&g, 0.9);
        let sampled = effective_diameter(
            &g,
            EffectiveDiameterOptions { quantile: 0.9, num_sources: 100 },
            &mut StdRng::seed_from_u64(0),
        );
        assert!((exact - sampled).abs() < 1e-12);
    }

    #[test]
    fn sampled_is_close_on_larger_graph() {
        use crate::generators::gnp_graph;
        let g = gnp_graph(600, 0.02, &mut StdRng::seed_from_u64(3));
        let exact = exact_effective_diameter(&g, 0.9);
        let sampled = effective_diameter(
            &g,
            EffectiveDiameterOptions { quantile: 0.9, num_sources: 150 },
            &mut StdRng::seed_from_u64(4),
        );
        assert!((exact - sampled).abs() < 0.3, "exact={exact}, sampled={sampled}");
    }

    #[test]
    fn empty_and_isolated_graphs_yield_zero() {
        assert_eq!(exact_effective_diameter(&Graph::new(), 0.9), 0.0);
        assert_eq!(exact_effective_diameter(&Graph::with_nodes(5), 0.9), 0.0);
    }

    #[test]
    fn disconnected_pairs_are_ignored() {
        // Two disjoint edges: all connected pairs at distance 1.
        let g = Graph::from_edges([(0u32, 1u32), (2, 3)]).unwrap();
        let d = exact_effective_diameter(&g, 0.9);
        assert!((d - 0.9).abs() < 1e-9, "got {d}");
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_quantile() {
        let _ = exact_effective_diameter(&path_graph(3), 1.5);
    }
}
