//! Degree statistics and the degree-distribution distance used as a
//! convergence measure in the sampling literature (\[10\], \[14\] in the paper).

use crate::graph::Graph;

/// Summary statistics of a degree sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree `2|E|/|V|`.
    pub mean: f64,
    /// Median degree.
    pub median: f64,
    /// Population variance of the degree sequence.
    pub variance: f64,
}

impl DegreeStats {
    /// Computes the summary for a graph.
    ///
    /// # Panics
    /// Panics on the empty graph (no degrees to summarize).
    pub fn of(g: &Graph) -> DegreeStats {
        assert!(g.num_nodes() > 0, "degree stats of an empty graph are undefined");
        let mut degs = g.degree_sequence();
        degs.sort_unstable();
        let n = degs.len();
        let mean = degs.iter().sum::<usize>() as f64 / n as f64;
        let variance = degs.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            degs[n / 2] as f64
        } else {
            (degs[n / 2 - 1] + degs[n / 2]) as f64 / 2.0
        };
        DegreeStats { min: degs[0], max: degs[n - 1], mean, median, variance }
    }
}

/// Histogram of degrees: `hist[d]` = number of nodes of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for d in g.degree_sequence() {
        hist[d] += 1;
    }
    hist
}

/// Total-variation distance between the *normalized* degree distributions
/// of two graphs: `½ Σ_d |p(d) − q(d)|` — the "degree distribution
/// distance" convergence measure from the sampling literature.
///
/// # Panics
/// Panics if either graph is empty.
pub fn degree_distribution_distance(a: &Graph, b: &Graph) -> f64 {
    assert!(a.num_nodes() > 0 && b.num_nodes() > 0, "empty graph has no distribution");
    let ha = degree_histogram(a);
    let hb = degree_histogram(b);
    let na = a.num_nodes() as f64;
    let nb = b.num_nodes() as f64;
    let len = ha.len().max(hb.len());
    let mut tv = 0.0;
    for d in 0..len {
        let pa = ha.get(d).copied().unwrap_or(0) as f64 / na;
        let pb = hb.get(d).copied().unwrap_or(0) as f64 / nb;
        tv += (pa - pb).abs();
    }
    tv / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, path_graph, star_graph};
    use crate::Graph;

    #[test]
    fn stats_of_path() {
        let s = DegreeStats::of(&path_graph(5));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2);
        assert!((s.mean - 1.6).abs() < 1e-12);
        assert_eq!(s.median, 2.0);
        assert!((s.variance - 0.24).abs() < 1e-12);
    }

    #[test]
    fn stats_of_regular_graph_have_zero_variance() {
        let s = DegreeStats::of(&complete_graph(7));
        assert_eq!(s.min, 6);
        assert_eq!(s.max, 6);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.median, 6.0);
    }

    #[test]
    fn histogram_of_star() {
        let h = degree_histogram(&star_graph(5)); // hub degree 4, leaves 1
        assert_eq!(h, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn distance_between_identical_graphs_is_zero() {
        let g = star_graph(6);
        assert_eq!(degree_distribution_distance(&g, &g), 0.0);
    }

    #[test]
    fn distance_between_disjoint_supports_is_one() {
        // All nodes degree 2 vs all nodes degree 3.
        let a = crate::generators::cycle_graph(5);
        let b = complete_graph(4);
        assert!((degree_distribution_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let a = path_graph(10);
        let b = star_graph(10);
        let d1 = degree_distribution_distance(&a, &b);
        let d2 = degree_distribution_distance(&b, &a);
        assert!((d1 - d2).abs() < 1e-15);
        assert!((0.0..=1.0).contains(&d1));
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn stats_reject_empty_graph() {
        let _ = DegreeStats::of(&Graph::new());
    }
}
