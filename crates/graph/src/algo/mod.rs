//! Classic graph algorithms needed by the experiments: traversal, connected
//! components, the SNAP-style 90% effective diameter of Table I, clustering
//! coefficients and degree statistics.

mod bfs;
mod clustering;
mod components;
mod degree;
mod diameter;

pub use bfs::{bfs_distances, bfs_order, UNREACHABLE};
pub use clustering::{
    average_clustering_coefficient, global_clustering_coefficient, local_clustering_coefficient,
    triangle_count,
};
pub use components::{connected_components, largest_component, Components};
pub use degree::{degree_distribution_distance, degree_histogram, DegreeStats};
pub use diameter::{effective_diameter, exact_effective_diameter, EffectiveDiameterOptions};
