//! Breadth-first search primitives.

use std::collections::VecDeque;

use crate::graph::Graph;
use crate::node::NodeId;

/// Distance value for unreachable nodes in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Hop distances from `source` to every node; [`UNREACHABLE`] marks nodes in
/// other components.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    assert!(g.contains_node(source), "source {source} not in graph");
    let mut dist = vec![UNREACHABLE; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Nodes in BFS visit order from `source` (its connected component only).
pub fn bfs_order(g: &Graph, source: NodeId) -> Vec<NodeId> {
    assert!(g.contains_node(source), "source {source} not in graph");
    let mut seen = vec![false; g.num_nodes()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle_graph, path_graph};

    #[test]
    fn distances_on_a_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d2 = bfs_distances(&g, NodeId(2));
        assert_eq!(d2, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn distances_on_a_cycle_wrap_around() {
        let g = cycle_graph(6);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn unreachable_nodes_are_marked() {
        let mut g = path_graph(3);
        g.add_node(); // isolated node 3
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn bfs_order_visits_component_breadth_first() {
        let g = path_graph(4);
        assert_eq!(bfs_order(&g, NodeId(1)), vec![NodeId(1), NodeId(0), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn bfs_order_skips_other_components() {
        let mut g = path_graph(3);
        g.add_node();
        assert_eq!(bfs_order(&g, NodeId(3)), vec![NodeId(3)]);
    }

    #[test]
    #[should_panic(expected = "not in graph")]
    fn rejects_unknown_source() {
        let g = path_graph(2);
        let _ = bfs_distances(&g, NodeId(9));
    }
}
