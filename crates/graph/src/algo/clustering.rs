//! Clustering coefficients and triangle counting.
//!
//! Theorem 3's removal criterion fires exactly when an edge closes many
//! triangles relative to its endpoints' degrees, so clustering statistics
//! predict how much material MTO has to work with on a given graph — the
//! experiments report them alongside the conductance gains.

use crate::graph::Graph;
use crate::node::NodeId;

/// Number of triangles through node `v`: edges among `N(v)`.
fn triangles_at(g: &Graph, v: NodeId) -> usize {
    let nbrs = g.neighbors(v);
    let mut t = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_edge(a, b) {
                t += 1;
            }
        }
    }
    t
}

/// Local clustering coefficient of `v`: closed wedges at `v` divided by
/// `C(k_v, 2)`. Zero for degree < 2.
pub fn local_clustering_coefficient(g: &Graph, v: NodeId) -> f64 {
    let k = g.degree(v);
    if k < 2 {
        return 0.0;
    }
    let possible = k * (k - 1) / 2;
    triangles_at(g, v) as f64 / possible as f64
}

/// Average of local clustering coefficients over all nodes (Watts–Strogatz
/// convention; isolated and degree-1 nodes contribute 0).
pub fn average_clustering_coefficient(g: &Graph) -> f64 {
    if g.num_nodes() == 0 {
        return 0.0;
    }
    let sum: f64 = g.nodes().map(|v| local_clustering_coefficient(g, v)).sum();
    sum / g.num_nodes() as f64
}

/// Total number of triangles in the graph.
pub fn triangle_count(g: &Graph) -> usize {
    // Each triangle is counted at each of its three corners.
    g.nodes().map(|v| triangles_at(g, v)).sum::<usize>() / 3
}

/// Global clustering coefficient (transitivity): `3·triangles / wedges`.
pub fn global_clustering_coefficient(g: &Graph) -> f64 {
    let wedges: usize = g
        .nodes()
        .map(|v| {
            let k = g.degree(v);
            k * k.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        return 0.0;
    }
    3.0 * triangle_count(g) as f64 / wedges as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, cycle_graph, paper_barbell, star_graph};

    #[test]
    fn triangle_graph_is_fully_clustered() {
        let g = complete_graph(3);
        assert_eq!(triangle_count(&g), 1);
        assert_eq!(global_clustering_coefficient(&g), 1.0);
        assert_eq!(average_clustering_coefficient(&g), 1.0);
        assert_eq!(local_clustering_coefficient(&g, NodeId(0)), 1.0);
    }

    #[test]
    fn complete_graph_triangle_count_is_binomial() {
        let g = complete_graph(6);
        assert_eq!(triangle_count(&g), 20); // C(6,3)
        assert_eq!(global_clustering_coefficient(&g), 1.0);
    }

    #[test]
    fn star_and_cycle_have_no_triangles() {
        assert_eq!(triangle_count(&star_graph(8)), 0);
        assert_eq!(triangle_count(&cycle_graph(5)), 0);
        assert_eq!(global_clustering_coefficient(&star_graph(8)), 0.0);
        assert_eq!(average_clustering_coefficient(&cycle_graph(5)), 0.0);
    }

    #[test]
    fn barbell_triangle_count() {
        // Two K11: 2 * C(11,3) = 2 * 165 = 330; the bridge adds none.
        let g = paper_barbell();
        assert_eq!(triangle_count(&g), 330);
    }

    #[test]
    fn barbell_local_coefficients() {
        let g = paper_barbell();
        // Non-bridge clique node: all 10 neighbors pairwise adjacent.
        assert_eq!(local_clustering_coefficient(&g, NodeId(1)), 1.0);
        // Bridge endpoint: 11 neighbors, the bridge peer adjacent to none
        // of the other 10 → C(10,2)=45 closed of C(11,2)=55.
        let c = local_clustering_coefficient(&g, NodeId(0));
        assert!((c - 45.0 / 55.0).abs() < 1e-12);
    }

    #[test]
    fn low_degree_nodes_contribute_zero() {
        let g = crate::generators::path_graph(3);
        assert_eq!(local_clustering_coefficient(&g, NodeId(0)), 0.0);
        assert_eq!(local_clustering_coefficient(&g, NodeId(1)), 0.0);
    }

    #[test]
    fn empty_graph_coefficients_are_zero() {
        let g = Graph::new();
        assert_eq!(average_clustering_coefficient(&g), 0.0);
        assert_eq!(global_clustering_coefficient(&g), 0.0);
        assert_eq!(triangle_count(&g), 0);
    }
}
