//! Connected components and largest-component extraction.
//!
//! The dataset pipeline mirrors the paper's preprocessing: after converting
//! a directed snapshot to its mutual-edge undirected core, only the largest
//! connected component is kept (random walks cannot leave a component).

use crate::graph::Graph;
use crate::node::NodeId;

/// Result of a connected-components decomposition.
#[derive(Clone, Debug)]
pub struct Components {
    /// Component label per node, densely numbered from 0.
    pub labels: Vec<u32>,
    /// Size of each component, indexed by label.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.sizes.len()
    }

    /// Label of the largest component (ties broken by lowest label).
    ///
    /// # Panics
    /// Panics on an empty graph.
    pub fn largest_label(&self) -> u32 {
        assert!(!self.sizes.is_empty(), "no components in an empty graph");
        let mut best = 0usize;
        for (i, &s) in self.sizes.iter().enumerate() {
            if s > self.sizes[best] {
                best = i;
            }
        }
        best as u32
    }

    /// Nodes belonging to component `label`, in ascending id order.
    pub fn members(&self, label: u32) -> Vec<NodeId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == label)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }
}

/// Labels connected components with iterative BFS (no recursion, so deep
/// graphs cannot overflow the stack).
pub fn connected_components(g: &Graph) -> Components {
    let n = g.num_nodes();
    let mut labels = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if labels[start] != u32::MAX {
            continue;
        }
        let label = sizes.len() as u32;
        let mut size = 0usize;
        labels[start] = label;
        queue.push_back(NodeId::from_index(start));
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in g.neighbors(u) {
                if labels[v.index()] == u32::MAX {
                    labels[v.index()] = label;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
    }
    Components { labels, sizes }
}

/// Extracts the largest connected component as a new densely-labelled
/// graph, together with the mapping `new id -> old id`.
///
/// # Panics
/// Panics on an empty graph.
pub fn largest_component(g: &Graph) -> (Graph, Vec<NodeId>) {
    let comps = connected_components(g);
    let keep = comps.members(comps.largest_label());
    g.induced_subgraph(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, path_graph};

    #[test]
    fn single_component_graph() {
        let g = path_graph(6);
        let c = connected_components(&g);
        assert_eq!(c.num_components(), 1);
        assert_eq!(c.sizes, vec![6]);
        assert!(c.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn multiple_components_counted() {
        // path of 3, triangle, and an isolated node = 3 components.
        let mut g = Graph::from_edges([(0u32, 1u32), (1, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        g.add_node(); // node 6
        let c = connected_components(&g);
        assert_eq!(c.num_components(), 3);
        assert_eq!(c.sizes, vec![3, 3, 1]);
        assert_eq!(c.labels[6], 2);
    }

    #[test]
    fn largest_label_prefers_biggest() {
        let mut g = Graph::from_edges([(0u32, 1u32), (2, 3), (3, 4)]).unwrap();
        g.add_node();
        let c = connected_components(&g);
        assert_eq!(c.largest_label(), 1);
        assert_eq!(c.members(1), vec![NodeId(2), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn largest_component_extraction() {
        let g = Graph::from_edges([(0u32, 1u32), (2, 3), (3, 4), (4, 2)]).unwrap();
        let (lcc, map) = largest_component(&g);
        assert_eq!(lcc.num_nodes(), 3);
        assert_eq!(lcc.num_edges(), 3);
        assert_eq!(map, vec![NodeId(2), NodeId(3), NodeId(4)]);
        lcc.validate().unwrap();
    }

    #[test]
    fn complete_graph_is_one_component() {
        let g = complete_graph(8);
        let (lcc, _) = largest_component(&g);
        assert_eq!(lcc.num_nodes(), 8);
        assert_eq!(lcc.num_edges(), 28);
    }

    #[test]
    fn all_isolated_nodes() {
        let g = Graph::with_nodes(4);
        let c = connected_components(&g);
        assert_eq!(c.num_components(), 4);
        assert!(c.sizes.iter().all(|&s| s == 1));
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn largest_label_panics_on_empty() {
        let c = connected_components(&Graph::new());
        let _ = c.largest_label();
    }
}
