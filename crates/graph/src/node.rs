//! Node and edge identifiers.
//!
//! Nodes are dense `u32` indices. Social-network snapshots in the paper's
//! scale (tens of thousands to a few hundred thousand users) fit comfortably,
//! and the narrow index keeps adjacency lists at half the memory of `usize`.

use std::fmt;

/// Identifier of a node (a social-network user) inside a [`crate::Graph`].
///
/// `NodeId` is a dense index: a graph with `n` nodes uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize`, for indexing into per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "node index {index} overflows u32");
        NodeId(index as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

/// An undirected edge in canonical form: `small <= large`.
///
/// The canonical ordering makes `Edge` usable as a key in hash maps and
/// ordered sets regardless of the orientation the edge was observed in —
/// which matters for the overlay delta where `(u, v)` and `(v, u)` must be
/// the same record.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    small: NodeId,
    large: NodeId,
}

impl Edge {
    /// Canonicalizes the pair `(u, v)`.
    ///
    /// # Panics
    /// Panics on self-loops: the paper's graphs are simple.
    #[inline]
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "self-loop ({u}, {v}) is not a valid undirected edge");
        if u < v {
            Edge { small: u, large: v }
        } else {
            Edge { small: v, large: u }
        }
    }

    /// The endpoint with the smaller id.
    #[inline]
    pub fn small(self) -> NodeId {
        self.small
    }

    /// The endpoint with the larger id.
    #[inline]
    pub fn large(self) -> NodeId {
        self.large
    }

    /// Both endpoints as a `(small, large)` tuple.
    #[inline]
    pub fn endpoints(self) -> (NodeId, NodeId) {
        (self.small, self.large)
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    /// Panics if `v` is not an endpoint of this edge.
    #[inline]
    pub fn other(self, v: NodeId) -> NodeId {
        if v == self.small {
            self.large
        } else if v == self.large {
            self.small
        } else {
            panic!("{v} is not an endpoint of {self:?}")
        }
    }

    /// Whether `v` is one of the two endpoints.
    #[inline]
    pub fn touches(self, v: NodeId) -> bool {
        v == self.small || v == self.large
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}-{})", self.small, self.large)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.small, self.large)
    }
}

impl From<(NodeId, NodeId)> for Edge {
    fn from((u, v): (NodeId, NodeId)) -> Self {
        Edge::new(u, v)
    }
}

impl From<(u32, u32)> for Edge {
    fn from((u, v): (u32, u32)) -> Self {
        Edge::new(NodeId(u), NodeId(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_index() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(u32::from(n), 42);
        assert_eq!(NodeId::from(42u32), n);
    }

    #[test]
    fn edge_canonicalizes_orientation() {
        let a = Edge::new(NodeId(7), NodeId(3));
        let b = Edge::new(NodeId(3), NodeId(7));
        assert_eq!(a, b);
        assert_eq!(a.small(), NodeId(3));
        assert_eq!(a.large(), NodeId(7));
        assert_eq!(a.endpoints(), (NodeId(3), NodeId(7)));
    }

    #[test]
    fn edge_other_returns_opposite_endpoint() {
        let e = Edge::new(NodeId(1), NodeId(9));
        assert_eq!(e.other(NodeId(1)), NodeId(9));
        assert_eq!(e.other(NodeId(9)), NodeId(1));
        assert!(e.touches(NodeId(1)));
        assert!(e.touches(NodeId(9)));
        assert!(!e.touches(NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(NodeId(4), NodeId(4));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        Edge::new(NodeId(1), NodeId(2)).other(NodeId(3));
    }

    #[test]
    fn edge_ordering_is_lexicographic_on_canonical_pair() {
        let e12 = Edge::from((1u32, 2u32));
        let e13 = Edge::from((3u32, 1u32));
        let e23 = Edge::from((2u32, 3u32));
        assert!(e12 < e13);
        assert!(e13 < e23);
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(NodeId(5).to_string(), "5");
        assert_eq!(Edge::from((9u32, 2u32)).to_string(), "(2, 9)");
        assert_eq!(format!("{:?}", NodeId(5)), "n5");
        assert_eq!(format!("{:?}", Edge::from((9u32, 2u32))), "(2-9)");
    }
}
