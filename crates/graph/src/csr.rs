//! Frozen compressed-sparse-row graph.
//!
//! Random walks take millions of steps over a graph that never changes (the
//! *original* topology; the overlay is a delta on top). [`CsrGraph`] packs
//! all adjacency into two flat arrays for cache-friendly neighbor lookup and
//! cheap cloning across experiment threads.

use crate::graph::Graph;
use crate::node::{Edge, NodeId};

/// Immutable CSR view of an undirected graph.
#[derive(Clone)]
pub struct CsrGraph {
    /// `offsets[v] .. offsets[v+1]` indexes `targets` for node `v`.
    offsets: Vec<u32>,
    /// Concatenated, per-node-sorted neighbor lists.
    targets: Vec<NodeId>,
    num_edges: usize,
}

impl CsrGraph {
    /// Freezes a [`Graph`] into CSR form.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(g.volume());
        offsets.push(0u32);
        for v in g.nodes() {
            targets.extend_from_slice(g.neighbors(v));
            offsets.push(targets.len() as u32);
        }
        CsrGraph { offsets, targets, num_edges: g.num_edges() }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted neighborhood of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Membership test via binary search on the sorted neighbor list.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(NodeId::from_index)
    }

    /// Iterates each undirected edge once, canonically oriented.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u).iter().filter(move |&&v| u < v).map(move |&v| Edge::new(u, v))
        })
    }

    /// Sum of all degrees, `2|E|`.
    #[inline]
    pub fn volume(&self) -> usize {
        self.targets.len()
    }

    /// Thaws back into a mutable [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let adj: Vec<Vec<NodeId>> = self.nodes().map(|v| self.neighbors(v).to_vec()).collect();
        Graph::assemble(adj, self.num_edges)
    }
}

impl From<&Graph> for CsrGraph {
    fn from(g: &Graph) -> Self {
        CsrGraph::from_graph(g)
    }
}

impl std::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CsrGraph(n={}, m={})", self.num_nodes(), self.num_edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges([(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap()
    }

    #[test]
    fn csr_matches_source_graph() {
        let g = sample();
        let c = CsrGraph::from_graph(&g);
        assert_eq!(c.num_nodes(), g.num_nodes());
        assert_eq!(c.num_edges(), g.num_edges());
        assert_eq!(c.volume(), g.volume());
        for v in g.nodes() {
            assert_eq!(c.neighbors(v), g.neighbors(v));
            assert_eq!(c.degree(v), g.degree(v));
        }
    }

    #[test]
    fn csr_edge_iteration_matches() {
        let g = sample();
        let c = CsrGraph::from_graph(&g);
        let mut a: Vec<Edge> = g.edges().collect();
        let mut b: Vec<Edge> = c.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn csr_has_edge_agrees() {
        let g = sample();
        let c = CsrGraph::from_graph(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(c.has_edge(u, v), g.has_edge(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn thaw_roundtrip() {
        let g = sample();
        let c = CsrGraph::from_graph(&g);
        let g2 = c.to_graph();
        g2.validate().unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in g.nodes() {
            assert_eq!(g2.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn empty_graph_freezes() {
        let c = CsrGraph::from_graph(&Graph::new());
        assert_eq!(c.num_nodes(), 0);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes_have_empty_neighborhoods() {
        let c = CsrGraph::from_graph(&Graph::with_nodes(3));
        for v in c.nodes() {
            assert!(c.neighbors(v).is_empty());
        }
    }
}
