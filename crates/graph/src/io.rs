//! Edge-list IO in the SNAP text format, plus the paper's directed→
//! undirected conversion.
//!
//! SNAP files are whitespace-separated `u v` pairs, `#`-prefixed comment
//! lines allowed. The paper's preprocessing (Section V-A.2) converts a
//! directed snapshot to undirected form "by only keeping edges that appear
//! in both directions" — implemented here as [`mutual_undirected`].

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::Graph;
use crate::node::NodeId;

/// A directed edge list as read from disk; kept raw so conversion policies
/// can be applied explicitly.
#[derive(Clone, Debug, Default)]
pub struct DirectedEdgeList {
    /// `(source, target)` pairs exactly as parsed.
    pub arcs: Vec<(u32, u32)>,
    /// One plus the largest node id seen (0 for an empty list).
    pub num_nodes: usize,
}

/// Parses a SNAP-style edge list from any reader.
///
/// Each non-comment line must contain exactly two unsigned integers.
pub fn parse_edge_list<R: Read>(reader: R) -> Result<DirectedEdgeList> {
    let mut arcs = Vec::new();
    let mut max_node = 0usize;
    let buf = BufReader::new(reader);
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_one = |tok: Option<&str>, what: &str| -> Result<u32> {
            let tok = tok.ok_or_else(|| GraphError::Parse {
                line: idx + 1,
                message: format!("missing {what} node id"),
            })?;
            tok.parse::<u32>().map_err(|e| GraphError::Parse {
                line: idx + 1,
                message: format!("bad {what} node id {tok:?}: {e}"),
            })
        };
        let u = parse_one(parts.next(), "source")?;
        let v = parse_one(parts.next(), "target")?;
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: idx + 1,
                message: "more than two fields on line".into(),
            });
        }
        max_node = max_node.max(u as usize + 1).max(v as usize + 1);
        arcs.push((u, v));
    }
    Ok(DirectedEdgeList { arcs, num_nodes: max_node })
}

/// Reads an edge list from a file path.
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> Result<DirectedEdgeList> {
    let file = std::fs::File::open(path)?;
    parse_edge_list(file)
}

/// Treats every arc as undirected (deduplicating reversals and dropping
/// self-loops) — the right conversion for natively undirected datasets.
pub fn as_undirected(list: &DirectedEdgeList) -> Graph {
    let mut b = GraphBuilder::with_nodes(list.num_nodes);
    for &(u, v) in &list.arcs {
        if u != v {
            b.add_edge_u32(u, v);
        }
    }
    b.build()
}

/// The paper's conversion: keep `(u, v)` only when both `u→v` and `v→u`
/// are present in the directed snapshot.
///
/// This guarantees that any random walk over the undirected result can be
/// replayed on the original directed interface (Section V-A.2).
pub fn mutual_undirected(list: &DirectedEdgeList) -> Graph {
    let mut seen = std::collections::HashSet::with_capacity(list.arcs.len());
    let mut b = GraphBuilder::with_nodes(list.num_nodes);
    for &(u, v) in &list.arcs {
        if u == v {
            continue;
        }
        if seen.contains(&(v, u)) {
            b.add_edge_u32(u, v);
        }
        seen.insert((u, v));
    }
    b.build()
}

/// Writes a graph as a SNAP-style undirected edge list (each edge once,
/// canonical orientation), with a header comment.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "# Undirected graph: {} nodes, {} edges", g.num_nodes(), g.num_edges())?;
    writeln!(out, "# FromNodeId\tToNodeId")?;
    for e in g.edges() {
        writeln!(out, "{}\t{}", e.small(), e.large())?;
    }
    out.flush()?;
    Ok(())
}

/// Writes a graph to a file path.
pub fn save_edge_list<P: AsRef<Path>>(g: &Graph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, file)
}

/// Reads an undirected graph back from a SNAP-style file.
pub fn load_undirected<P: AsRef<Path>>(path: P) -> Result<Graph> {
    Ok(as_undirected(&read_edge_list(path)?))
}

impl Graph {
    /// Ensures node `v` exists, growing the graph if necessary. Used when
    /// replaying edge lists with gaps in the id space.
    pub fn ensure_node(&mut self, v: NodeId) {
        while !self.contains_node(v) {
            self.add_node();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# header\n\n0 1\n1\t2\n  # another comment\n2 0\n";
        let list = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(list.arcs, vec![(0, 1), (1, 2), (2, 0)]);
        assert_eq!(list.num_nodes, 3);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            parse_edge_list("0\n".as_bytes()),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_edge_list("0 x\n".as_bytes()),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_edge_list("0 1 2\n".as_bytes()),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_edge_list("0 1\n-3 4\n".as_bytes()),
            Err(GraphError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn as_undirected_dedups_and_drops_loops() {
        let list = parse_edge_list("0 1\n1 0\n2 2\n1 2\n".as_bytes()).unwrap();
        let g = as_undirected(&list);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_nodes(), 3);
    }

    #[test]
    fn mutual_keeps_only_reciprocated_arcs() {
        // 0→1 and 1→0 reciprocated; 1→2 one-way; 2→3 and 3→2 reciprocated.
        let list = parse_edge_list("0 1\n1 0\n1 2\n2 3\n3 2\n".as_bytes()).unwrap();
        let g = mutual_undirected(&list);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(2), NodeId(3)));
        assert!(!g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn mutual_handles_duplicate_arcs() {
        let list = parse_edge_list("0 1\n0 1\n1 0\n".as_bytes()).unwrap();
        let g = mutual_undirected(&list);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn mutual_ignores_self_loops() {
        let list = parse_edge_list("5 5\n5 5\n".as_bytes()).unwrap();
        let g = mutual_undirected(&list);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_nodes(), 6);
    }

    #[test]
    fn write_then_parse_roundtrip() {
        let g = Graph::from_edges([(0u32, 1u32), (1, 2), (0, 2), (2, 3)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let list = parse_edge_list(buf.as_slice()).unwrap();
        let g2 = as_undirected(&list);
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in g.nodes() {
            assert_eq!(g2.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mto_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = crate::generators::paper_barbell();
        save_edge_list(&g, &path).unwrap();
        let g2 = load_undirected(&path).unwrap();
        assert_eq!(g2.num_nodes(), 22);
        assert_eq!(g2.num_edges(), 111);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ensure_node_grows() {
        let mut g = Graph::new();
        g.ensure_node(NodeId(4));
        assert_eq!(g.num_nodes(), 5);
        g.ensure_node(NodeId(2)); // no-op
        assert_eq!(g.num_nodes(), 5);
    }
}
