//! The mutable adjacency-list graph at the heart of the substrate.
//!
//! [`Graph`] models the *simple undirected* graphs the paper works with
//! (Section II-A: "Consider the social-network topology as an undirected
//! graph G(V, E)"). Adjacency lists are kept sorted so that membership tests
//! are `O(log deg)` and common-neighbor counting — the workhorse of the
//! Theorem 3 removal criterion — is a linear merge.

use crate::error::{GraphError, Result};
use crate::node::{Edge, NodeId};

/// A simple undirected graph with dense `u32` node ids and sorted adjacency.
///
/// Invariants maintained by every method:
/// * no self-loops, no parallel edges;
/// * each adjacency list is strictly sorted;
/// * `(u, v) ∈ E ⇔ (v, u) ∈ E`.
#[derive(Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    num_edges: usize,
}

impl Graph {
    /// Creates an empty graph with zero nodes.
    pub fn new() -> Self {
        Graph { adj: Vec::new(), num_edges: 0 }
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph { adj: vec![Vec::new(); n], num_edges: 0 }
    }

    /// Builds a graph from an iterator of `(u, v)` pairs.
    ///
    /// Nodes are created as needed (the node count becomes one plus the
    /// largest id seen). Duplicate pairs and reversed duplicates are
    /// rejected; use [`crate::GraphBuilder`] for forgiving construction.
    pub fn from_edges<I, E>(edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = E>,
        E: Into<(u32, u32)>,
    {
        let mut g = Graph::new();
        for pair in edges {
            let (u, v) = pair.into();
            let (u, v) = (NodeId(u), NodeId(v));
            let needed = u.index().max(v.index()) + 1;
            if needed > g.adj.len() {
                g.adj.resize(needed, Vec::new());
            }
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of nodes (including isolated ones).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// `true` when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Whether `v` is a valid node of this graph.
    #[inline]
    pub fn contains_node(&self, v: NodeId) -> bool {
        v.index() < self.adj.len()
    }

    /// Appends a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_index(self.adj.len());
        self.adj.push(Vec::new());
        id
    }

    /// Appends `k` isolated nodes, returning the id of the first.
    pub fn add_nodes(&mut self, k: usize) -> NodeId {
        let first = NodeId::from_index(self.adj.len());
        self.adj.extend(std::iter::repeat_with(Vec::new).take(k));
        first
    }

    fn check_node(&self, v: NodeId) -> Result<()> {
        if self.contains_node(v) {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds { node: v, num_nodes: self.adj.len() })
        }
    }

    /// Inserts the undirected edge `(u, v)`.
    ///
    /// Errors on self-loops, unknown endpoints and duplicate edges.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.check_node(u)?;
        self.check_node(v)?;
        let pos_u = match self.adj[u.index()].binary_search(&v) {
            Ok(_) => return Err(GraphError::DuplicateEdge(u, v)),
            Err(pos) => pos,
        };
        self.adj[u.index()].insert(pos_u, v);
        let pos_v = self.adj[v.index()]
            .binary_search(&u)
            .expect_err("adjacency symmetry violated: (v,u) present without (u,v)");
        self.adj[v.index()].insert(pos_v, u);
        self.num_edges += 1;
        Ok(())
    }

    /// Inserts `(u, v)` if absent; returns whether an insertion happened.
    pub fn add_edge_if_absent(&mut self, u: NodeId, v: NodeId) -> Result<bool> {
        match self.add_edge(u, v) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge(..)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Removes the undirected edge `(u, v)`.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        self.check_node(u)?;
        self.check_node(v)?;
        let pos_u =
            self.adj[u.index()].binary_search(&v).map_err(|_| GraphError::MissingEdge(u, v))?;
        self.adj[u.index()].remove(pos_u);
        let pos_v = self.adj[v.index()]
            .binary_search(&u)
            .expect("adjacency symmetry violated: (u,v) present without (v,u)");
        self.adj[v.index()].remove(pos_v);
        self.num_edges -= 1;
        Ok(())
    }

    /// Whether the undirected edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v
            && self.contains_node(u)
            && self.contains_node(v)
            && self.adj[u.index()].binary_search(&v).is_ok()
    }

    /// The sorted neighborhood `N(v)` — exactly what the OSN interface's
    /// query `q(v)` exposes to a third party.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v.index()]
    }

    /// The degree `k_v = |N(v)|`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(NodeId::from_index)
    }

    /// Iterates over all undirected edges, each reported once in canonical
    /// `(small, large)` orientation.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(move |(ui, nbrs)| {
            let u = NodeId::from_index(ui);
            nbrs.iter().filter(move |&&v| u < v).map(move |&v| Edge::new(u, v))
        })
    }

    /// Counts `|N(u) ∩ N(v)|` with a sorted merge.
    ///
    /// This is the quantity the Theorem 3 removal criterion keys on.
    pub fn common_neighbor_count(&self, u: NodeId, v: NodeId) -> usize {
        sorted_intersection_count(&self.adj[u.index()], &self.adj[v.index()])
    }

    /// Materializes `N(u) ∩ N(v)` (sorted).
    pub fn common_neighbors(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        sorted_intersection(&self.adj[u.index()], &self.adj[v.index()])
    }

    /// Sum of degrees of the whole graph: `vol(V) = 2|E|`.
    #[inline]
    pub fn volume(&self) -> usize {
        2 * self.num_edges
    }

    /// Largest degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Smallest degree, or 0 for the empty graph.
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Average degree `2|E| / |V|`, or 0.0 for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            self.volume() as f64 / self.adj.len() as f64
        }
    }

    /// The degree sequence, indexed by node.
    pub fn degree_sequence(&self) -> Vec<usize> {
        self.adj.iter().map(Vec::len).collect()
    }

    /// Extracts the subgraph induced by `keep`, relabelling nodes densely in
    /// the order they appear in `keep`. Returns the subgraph and the mapping
    /// `new id -> old id`.
    ///
    /// # Panics
    /// Panics if `keep` references unknown nodes or contains duplicates.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut old_to_new: Vec<Option<NodeId>> = vec![None; self.adj.len()];
        for (new_idx, &old) in keep.iter().enumerate() {
            assert!(self.contains_node(old), "unknown node {old} in induced_subgraph");
            assert!(old_to_new[old.index()].is_none(), "duplicate node {old} in induced_subgraph");
            old_to_new[old.index()] = Some(NodeId::from_index(new_idx));
        }
        let mut sub = Graph::with_nodes(keep.len());
        for (new_idx, &old) in keep.iter().enumerate() {
            let nu = NodeId::from_index(new_idx);
            for &old_nbr in self.neighbors(old) {
                if let Some(nv) = old_to_new[old_nbr.index()] {
                    if nu < nv {
                        sub.add_edge(nu, nv).expect("induced edge must be fresh");
                    }
                }
            }
        }
        (sub, keep.to_vec())
    }

    /// Assembles a graph from pre-validated parts. Crate-internal: callers
    /// (the builder, CSR round-trips) must guarantee sorted, symmetric,
    /// loop-free adjacency with an accurate edge count.
    pub(crate) fn assemble(adj: Vec<Vec<NodeId>>, num_edges: usize) -> Graph {
        Graph { adj, num_edges }
    }

    /// Checks internal invariants; used by tests and debug assertions.
    pub fn validate(&self) -> Result<()> {
        let mut count = 0usize;
        for (ui, nbrs) in self.adj.iter().enumerate() {
            let u = NodeId::from_index(ui);
            let mut prev: Option<NodeId> = None;
            for &v in nbrs {
                if v == u {
                    return Err(GraphError::SelfLoop(u));
                }
                self.check_node(v)?;
                if let Some(p) = prev {
                    if p >= v {
                        return Err(GraphError::DuplicateEdge(u, v));
                    }
                }
                prev = Some(v);
                if self.adj[v.index()].binary_search(&u).is_err() {
                    return Err(GraphError::MissingEdge(v, u));
                }
                count += 1;
            }
        }
        debug_assert_eq!(count % 2, 0);
        if count / 2 != self.num_edges {
            return Err(GraphError::Parse {
                line: 0,
                message: format!(
                    "edge count mismatch: counted {}, recorded {}",
                    count / 2,
                    self.num_edges
                ),
            });
        }
        Ok(())
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph(n={}, m={})", self.num_nodes(), self.num_edges())
    }
}

/// Counts elements common to two strictly sorted slices.
pub(crate) fn sorted_intersection_count(a: &[NodeId], b: &[NodeId]) -> usize {
    // Galloping pays off when one list is much shorter (hub nodes in
    // power-law graphs); a plain merge is best for comparable lengths.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0;
    }
    if long.len() / short.len() >= 16 {
        short.iter().filter(|x| long.binary_search(x).is_ok()).count()
    } else {
        let mut i = 0;
        let mut j = 0;
        let mut n = 0;
        while i < short.len() && j < long.len() {
            match short[i].cmp(&long[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

/// Materializes the intersection of two strictly sorted slices.
pub(crate) fn sorted_intersection(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges([(0u32, 1u32), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn from_edges_builds_expected_topology() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(0)));
        g.validate().unwrap();
    }

    #[test]
    fn add_remove_edge_roundtrip() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(NodeId(0)), 1);
        g.remove_edge(NodeId(3), NodeId(0)).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(NodeId(0)), 0);
        g.validate().unwrap();
    }

    #[test]
    fn duplicate_and_self_loop_rejected() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        assert!(matches!(g.add_edge(NodeId(1), NodeId(0)), Err(GraphError::DuplicateEdge(..))));
        assert!(matches!(g.add_edge(NodeId(2), NodeId(2)), Err(GraphError::SelfLoop(_))));
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(9)),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn add_edge_if_absent_is_idempotent() {
        let mut g = Graph::with_nodes(2);
        assert!(g.add_edge_if_absent(NodeId(0), NodeId(1)).unwrap());
        assert!(!g.add_edge_if_absent(NodeId(0), NodeId(1)).unwrap());
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn remove_missing_edge_errors() {
        let mut g = Graph::with_nodes(2);
        assert!(matches!(g.remove_edge(NodeId(0), NodeId(1)), Err(GraphError::MissingEdge(..))));
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges([(0u32, 5u32), (0, 2), (0, 9), (0, 1)]).unwrap();
        let nbrs: Vec<u32> = g.neighbors(NodeId(0)).iter().map(|n| n.0).collect();
        assert_eq!(nbrs, vec![1, 2, 5, 9]);
    }

    #[test]
    fn edges_iterates_each_once_canonically() {
        let g = triangle();
        let mut edges: Vec<(u32, u32)> = g.edges().map(|e| (e.small().0, e.large().0)).collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn common_neighbors_of_triangle_plus_pendant() {
        // 0-1-2-0 triangle plus pendant 3 attached to 0.
        let g = Graph::from_edges([(0u32, 1u32), (1, 2), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.common_neighbor_count(NodeId(0), NodeId(1)), 1);
        assert_eq!(g.common_neighbors(NodeId(0), NodeId(1)), vec![NodeId(2)]);
        assert_eq!(g.common_neighbor_count(NodeId(3), NodeId(2)), 1); // via 0
        assert_eq!(g.common_neighbor_count(NodeId(3), NodeId(0)), 0);
    }

    #[test]
    fn degree_statistics() {
        let g = Graph::from_edges([(0u32, 1u32), (1, 2), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.volume(), 8);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.degree_sequence(), vec![3, 2, 2, 1]);
    }

    #[test]
    fn empty_graph_statistics() {
        let g = Graph::new();
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn induced_subgraph_relabels_densely() {
        let g = Graph::from_edges([(0u32, 1u32), (1, 2), (2, 3), (3, 0)]).unwrap();
        let (sub, map) = g.induced_subgraph(&[NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 2); // 1-2 and 2-3 survive; 3-0 and 0-1 cut
        assert!(sub.has_edge(NodeId(0), NodeId(1))); // old 1-2
        assert!(sub.has_edge(NodeId(1), NodeId(2))); // old 2-3
        assert_eq!(map, vec![NodeId(1), NodeId(2), NodeId(3)]);
        sub.validate().unwrap();
    }

    #[test]
    fn intersection_helpers_agree_with_naive() {
        let a: Vec<NodeId> = [1u32, 3, 5, 7, 9, 11].into_iter().map(NodeId).collect();
        let b: Vec<NodeId> = [2u32, 3, 5, 8, 11, 20].into_iter().map(NodeId).collect();
        assert_eq!(sorted_intersection_count(&a, &b), 3);
        assert_eq!(sorted_intersection(&a, &b), vec![NodeId(3), NodeId(5), NodeId(11)]);
        // Galloping path: long list >> short list.
        let long: Vec<NodeId> = (0u32..1000).map(NodeId).collect();
        let short = vec![NodeId(5), NodeId(999), NodeId(1001)];
        assert_eq!(sorted_intersection_count(&short, &long), 2);
    }

    #[test]
    fn validate_catches_corruption() {
        let mut g = triangle();
        // Corrupt: remove one direction only.
        g.adj[0].retain(|&v| v != NodeId(1));
        assert!(g.validate().is_err());
    }
}
