//! The latent-space graph model of Section IV-B.
//!
//! Nodes are points in a `D`-dimensional latent space; `i` and `j` connect
//! with probability `P(i ~ j | d_ij) = 1 / (1 + e^{α (d_ij - r)})` (paper
//! Eq. 11). `r` controls sociability, `α` the sharpness; `α = +∞` makes the
//! model a deterministic geometric graph (`d_ij < r ⇔ edge`), which is the
//! regime of Theorem 6 and Fig 10.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::graph::Graph;

/// A sampled latent position.
#[derive(Clone, Debug, PartialEq)]
pub struct LatentPoint {
    /// Coordinates, one per latent dimension.
    pub coords: Vec<f64>,
}

impl LatentPoint {
    /// Euclidean distance to another point.
    ///
    /// # Panics
    /// Panics if dimensions disagree.
    pub fn distance(&self, other: &LatentPoint) -> f64 {
        assert_eq!(self.coords.len(), other.coords.len(), "dimension mismatch");
        self.coords.iter().zip(&other.coords).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
    }
}

/// Parameters of the latent-space model.
#[derive(Clone, Debug)]
pub struct LatentSpaceModel {
    /// Side lengths of the axis-aligned box nodes are uniform in; its length
    /// is the dimension `D`. The paper's Fig 10 uses `[4.0, 5.0]` (an area
    /// of `[0,4] × [0,5]`) with `D = 2`.
    pub box_sides: Vec<f64>,
    /// Sociability radius `r` (paper: 0.7).
    pub r: f64,
    /// Link-function sharpness `α`; `None` means `α = +∞` (hard threshold).
    pub alpha: Option<f64>,
}

impl LatentSpaceModel {
    /// The configuration used in the paper's Fig 10 and Theorem 6
    /// experiments: `D = 2`, box `[0,4] × [0,5]`, `r = 0.7`, `α = ∞`.
    pub fn paper_fig10() -> Self {
        LatentSpaceModel { box_sides: vec![4.0, 5.0], r: 0.7, alpha: None }
    }

    /// Latent dimension `D`.
    pub fn dimension(&self) -> usize {
        self.box_sides.len()
    }

    /// Connection probability for a pair at distance `d` (Eq. 11).
    pub fn link_probability(&self, d: f64) -> f64 {
        match self.alpha {
            None => {
                if d < self.r {
                    1.0
                } else {
                    0.0
                }
            }
            Some(alpha) => 1.0 / (1.0 + (alpha * (d - self.r)).exp()),
        }
    }

    /// Volume of the `D`-dimensional hypersphere of radius `r` — `V(r)` in
    /// Theorem 6. Supports `D ∈ {1, 2, 3}`, which covers the paper's use.
    ///
    /// # Panics
    /// Panics for other dimensions.
    pub fn hypersphere_volume(&self) -> f64 {
        let r = self.r;
        match self.dimension() {
            1 => 2.0 * r,
            2 => std::f64::consts::PI * r * r,
            3 => 4.0 / 3.0 * std::f64::consts::PI * r * r * r,
            d => panic!("hypersphere volume implemented for D <= 3, got {d}"),
        }
    }

    /// Samples `n` node positions uniformly in the box.
    pub fn sample_points<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<LatentPoint> {
        (0..n)
            .map(|_| LatentPoint {
                coords: self.box_sides.iter().map(|&s| rng.gen_range(0.0..s)).collect(),
            })
            .collect()
    }
}

/// A latent-space graph together with the positions that generated it —
/// Theorem 6 verification needs the geometry, not just the topology.
#[derive(Clone, Debug)]
pub struct LatentSpaceSample {
    /// The generated graph.
    pub graph: Graph,
    /// Latent position of each node.
    pub points: Vec<LatentPoint>,
}

/// Samples an `n`-node latent-space graph.
///
/// Pair enumeration is `O(n²)`; the paper's Fig 10 uses `n ≤ 100`, and the
/// Theorem 6 check uses point samples rather than graphs, so quadratic cost
/// is fine here.
pub fn latent_space_graph<R: Rng + ?Sized>(
    model: &LatentSpaceModel,
    n: usize,
    rng: &mut R,
) -> LatentSpaceSample {
    let points = model.sample_points(n, rng);
    let mut b = GraphBuilder::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = points[i].distance(&points[j]);
            let p = model.link_probability(d);
            let connect = match model.alpha {
                None => p == 1.0,
                Some(_) => rng.gen::<f64>() < p,
            };
            if connect {
                b.add_edge_u32(i as u32, j as u32);
            }
        }
    }
    LatentSpaceSample { graph: b.build(), points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hard_threshold_matches_geometry_exactly() {
        let model = LatentSpaceModel::paper_fig10();
        let mut rng = StdRng::seed_from_u64(4);
        let s = latent_space_graph(&model, 60, &mut rng);
        for i in 0..60 {
            for j in (i + 1)..60 {
                let d = s.points[i].distance(&s.points[j]);
                let has = s.graph.has_edge(crate::NodeId(i as u32), crate::NodeId(j as u32));
                assert_eq!(has, d < model.r, "pair ({i},{j}) at distance {d}");
            }
        }
    }

    #[test]
    fn link_probability_hard_and_soft() {
        let hard = LatentSpaceModel::paper_fig10();
        assert_eq!(hard.link_probability(0.5), 1.0);
        assert_eq!(hard.link_probability(0.9), 0.0);

        let soft = LatentSpaceModel { alpha: Some(4.0), ..LatentSpaceModel::paper_fig10() };
        let at_r = soft.link_probability(0.7);
        assert!((at_r - 0.5).abs() < 1e-12, "sigmoid is 1/2 at d = r");
        assert!(soft.link_probability(0.1) > 0.9);
        assert!(soft.link_probability(2.0) < 0.01);
    }

    #[test]
    fn soft_model_is_monotone_in_distance() {
        let soft = LatentSpaceModel { alpha: Some(3.0), ..LatentSpaceModel::paper_fig10() };
        let mut last = f64::INFINITY;
        for k in 0..50 {
            let d = k as f64 * 0.1;
            let p = soft.link_probability(d);
            assert!(p <= last + 1e-15);
            last = p;
        }
    }

    #[test]
    fn points_stay_in_box() {
        let model = LatentSpaceModel::paper_fig10();
        let pts = model.sample_points(500, &mut StdRng::seed_from_u64(8));
        for p in &pts {
            assert_eq!(p.coords.len(), 2);
            assert!(p.coords[0] >= 0.0 && p.coords[0] < 4.0);
            assert!(p.coords[1] >= 0.0 && p.coords[1] < 5.0);
        }
    }

    #[test]
    fn distance_is_a_metric_on_samples() {
        let model = LatentSpaceModel::paper_fig10();
        let pts = model.sample_points(20, &mut StdRng::seed_from_u64(2));
        for a in &pts {
            assert_eq!(a.distance(a), 0.0);
            for b in &pts {
                assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
                for c in &pts {
                    assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn hypersphere_volumes() {
        let mut m = LatentSpaceModel::paper_fig10();
        assert!((m.hypersphere_volume() - std::f64::consts::PI * 0.49).abs() < 1e-12);
        m.box_sides = vec![1.0];
        assert!((m.hypersphere_volume() - 1.4).abs() < 1e-12);
        m.box_sides = vec![1.0, 1.0, 1.0];
        let v3 = 4.0 / 3.0 * std::f64::consts::PI * 0.7f64.powi(3);
        assert!((m.hypersphere_volume() - v3).abs() < 1e-12);
    }

    #[test]
    fn denser_radius_means_more_edges() {
        let mut rng = StdRng::seed_from_u64(13);
        let tight = LatentSpaceModel { r: 0.4, ..LatentSpaceModel::paper_fig10() };
        let wide = LatentSpaceModel { r: 1.2, ..LatentSpaceModel::paper_fig10() };
        let g_tight = latent_space_graph(&tight, 80, &mut rng).graph;
        let g_wide = latent_space_graph(&wide, 80, &mut rng).graph;
        assert!(g_wide.num_edges() > g_tight.num_edges());
    }

    #[test]
    fn deterministic_under_seed() {
        let model = LatentSpaceModel::paper_fig10();
        let a = latent_space_graph(&model, 40, &mut StdRng::seed_from_u64(21));
        let b = latent_space_graph(&model, 40, &mut StdRng::seed_from_u64(21));
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.points, b.points);
    }
}
