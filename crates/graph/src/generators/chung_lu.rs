//! Chung–Lu random graphs with prescribed expected degrees.
//!
//! Real OSN snapshots (Epinions, Slashdot, Google Plus) have heavy-tailed
//! degree distributions. The Chung–Lu model connects nodes `i, j` with
//! probability `min(1, w_i w_j / W)` where `W = Σ w`, reproducing an
//! arbitrary expected-degree sequence. With power-law weights it is the
//! standard stand-in for scraped social graphs, and it is what the
//! experiment crate calibrates against the paper's Table I datasets.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::graph::Graph;

/// Specification of a Chung–Lu graph with power-law expected degrees.
#[derive(Clone, Debug)]
pub struct ChungLuSpec {
    /// Number of nodes.
    pub n: usize,
    /// Power-law exponent `γ` of the expected-degree distribution
    /// (real social networks: 2.0–3.0).
    pub exponent: f64,
    /// Smallest expected degree.
    pub min_degree: f64,
    /// Cap on expected degree (keeps `w_i w_j / W <= 1` reasonable);
    /// customarily `≈ sqrt(W)`.
    pub max_degree: f64,
}

impl ChungLuSpec {
    /// Convenience constructor.
    pub fn new(n: usize, exponent: f64, min_degree: f64, max_degree: f64) -> Self {
        ChungLuSpec { n, exponent, min_degree, max_degree }
    }
}

/// Draws `n` power-law weights `w ∝ x^{-γ}` truncated to
/// `[min_degree, max_degree]`, by inverse-transform sampling.
///
/// # Panics
/// Panics if the bounds are not `0 < min <= max` or `γ <= 1`.
pub fn power_law_weights<R: Rng + ?Sized>(spec: &ChungLuSpec, rng: &mut R) -> Vec<f64> {
    assert!(spec.exponent > 1.0, "power-law exponent must exceed 1, got {}", spec.exponent);
    assert!(
        spec.min_degree > 0.0 && spec.min_degree <= spec.max_degree,
        "need 0 < min_degree <= max_degree, got [{}, {}]",
        spec.min_degree,
        spec.max_degree
    );
    let a = 1.0 - spec.exponent; // CDF exponent
    let lo = spec.min_degree.powf(a);
    let hi = spec.max_degree.powf(a);
    (0..spec.n)
        .map(|_| {
            let u: f64 = rng.gen();
            (lo + u * (hi - lo)).powf(1.0 / a)
        })
        .collect()
}

/// Samples a Chung–Lu graph for the given expected-degree weights.
///
/// Implementation: the Miller–Hagberg style neighbor-skipping algorithm over
/// weight-sorted nodes, expected `O(n + m)`; edges are then emitted in the
/// original node labelling via the sorting permutation.
pub fn chung_lu_graph<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> Graph {
    let n = weights.len();
    let mut b = GraphBuilder::with_nodes(n);
    if n < 2 {
        return b.build();
    }
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must not all be zero");

    // Sort node indices by descending weight.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        weights[b as usize].partial_cmp(&weights[a as usize]).expect("weights must not be NaN")
    });
    let sorted_w: Vec<f64> = order.iter().map(|&i| weights[i as usize]).collect();

    for i in 0..n {
        let wi = sorted_w[i];
        if wi <= 0.0 {
            break; // descending order: the rest are zero too
        }
        let mut j = i + 1;
        // Upper bound used for geometric skipping; exact acceptance applied
        // per candidate.
        let mut p = (wi * sorted_w[j.min(n - 1)] / total).min(1.0);
        while j < n && p > 0.0 {
            if p < 1.0 {
                let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                j += (r.ln() / (1.0 - p).ln()).floor() as usize;
            }
            if j < n {
                let q = (wi * sorted_w[j] / total).min(1.0);
                if rng.gen::<f64>() < q / p {
                    b.add_edge_u32(order[i], order[j]);
                }
                p = q;
                j += 1;
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec(n: usize) -> ChungLuSpec {
        ChungLuSpec::new(n, 2.5, 2.0, (n as f64).sqrt())
    }

    #[test]
    fn weights_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = spec(2000);
        let w = power_law_weights(&s, &mut rng);
        assert_eq!(w.len(), 2000);
        for &x in &w {
            assert!(x >= s.min_degree - 1e-9 && x <= s.max_degree + 1e-9, "weight {x}");
        }
    }

    #[test]
    fn weights_are_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = spec(20_000);
        let mut w = power_law_weights(&s, &mut rng);
        w.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = w[w.len() / 2];
        let p99 = w[(w.len() as f64 * 0.99) as usize];
        assert!(p99 / median > 3.0, "tail too light: median={median}, p99={p99}");
    }

    #[test]
    fn graph_average_degree_tracks_mean_weight() {
        let mut rng = StdRng::seed_from_u64(42);
        let s = spec(5000);
        let w = power_law_weights(&s, &mut rng);
        let mean_w = w.iter().sum::<f64>() / w.len() as f64;
        let g = chung_lu_graph(&w, &mut rng);
        let avg = g.average_degree();
        // Expected degree of node i is roughly w_i (up to the min(1,·) cap),
        // so the realized average should be near mean_w; generous tolerance
        // to keep the test robust across seeds.
        assert!((avg - mean_w).abs() / mean_w < 0.25, "avg degree {avg} vs mean weight {mean_w}");
        g.validate().unwrap();
    }

    #[test]
    fn high_weight_nodes_get_more_edges() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut w = vec![2.0; 500];
        w[0] = 60.0;
        let g = chung_lu_graph(&w, &mut rng);
        let hub = g.degree(crate::NodeId(0));
        assert!(hub > 20, "hub with weight 60 should have high degree, got {hub}");
    }

    #[test]
    fn deterministic_under_seed() {
        let s = spec(300);
        let w = power_law_weights(&s, &mut StdRng::seed_from_u64(1));
        let g1 = chung_lu_graph(&w, &mut StdRng::seed_from_u64(2));
        let g2 = chung_lu_graph(&w, &mut StdRng::seed_from_u64(2));
        assert_eq!(g1.num_edges(), g2.num_edges());
    }

    #[test]
    fn degenerate_sizes() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(chung_lu_graph(&[], &mut rng).num_nodes(), 0);
        assert_eq!(chung_lu_graph(&[3.0], &mut rng).num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn rejects_flat_exponent() {
        let s = ChungLuSpec::new(10, 0.5, 1.0, 5.0);
        let _ = power_law_weights(&s, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "min_degree")]
    fn rejects_inverted_bounds() {
        let s = ChungLuSpec::new(10, 2.5, 6.0, 5.0);
        let _ = power_law_weights(&s, &mut StdRng::seed_from_u64(0));
    }
}
