//! The barbell running example from the paper (Fig 1).
//!
//! Two cliques `K_c` joined by a single bridge edge. With `c = 11` this is
//! the paper's 22-node, 111-edge graph whose conductance is
//! `Φ(G) = 1 / (C(11,2) + 1) = 1/56 ≈ 0.018` — the unique minimizing cut
//! splits the two cliques and the lone bridge is the only cross-cutting
//! edge.

use crate::graph::Graph;
use crate::node::NodeId;

/// Parameters of a generalized barbell graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BarbellSpec {
    /// Size of each clique (`>= 2`).
    pub clique_size: usize,
    /// Number of bridge edges between the cliques (`>= 1`); the paper's
    /// running example has exactly one.
    pub bridges: usize,
}

impl BarbellSpec {
    /// The paper's running example: two `K_11` plus one bridge.
    pub fn paper() -> Self {
        BarbellSpec { clique_size: 11, bridges: 1 }
    }

    /// Expected node count.
    pub fn num_nodes(&self) -> usize {
        2 * self.clique_size
    }

    /// Expected edge count: `2·C(c,2) + bridges`.
    pub fn num_edges(&self) -> usize {
        self.clique_size * (self.clique_size - 1) + self.bridges
    }

    /// Exact conductance of the clique/clique cut under the paper's
    /// Definition 3, whose denominator counts each edge with at least one
    /// endpoint in `S` *once* (not per endpoint). One clique side has
    /// `C(c,2)` internal edges plus the `bridges` cross edges, giving
    /// `bridges / (C(c,2) + bridges)`; with `c = 11, bridges = 1` that is
    /// `1/56 ≈ 0.0179`, exactly the paper's `Φ(G) = 0.018`.
    pub fn clique_cut_conductance(&self) -> f64 {
        let side = self.clique_size * (self.clique_size - 1) / 2 + self.bridges;
        self.bridges as f64 / side as f64
    }
}

/// Builds a barbell graph.
///
/// Nodes `0 .. c` form clique `A` (the paper's `S`), nodes `c .. 2c` form
/// clique `B` (`S̄`). Bridge `i` joins node `i` of `A` to node `c + i` of
/// `B`, so the paper's bridge endpoints `u, v` are `NodeId(0)` and
/// `NodeId(c)`.
///
/// # Panics
/// Panics if `clique_size < 2` or `bridges` is zero or exceeds
/// `clique_size` (one bridge per node pair keeps the graph simple).
pub fn barbell_graph(spec: BarbellSpec) -> Graph {
    let c = spec.clique_size;
    assert!(c >= 2, "barbell cliques need at least 2 nodes, got {c}");
    assert!((1..=c).contains(&spec.bridges), "bridges must be in 1..={c}, got {}", spec.bridges);
    let mut g = Graph::with_nodes(2 * c);
    for offset in [0, c] {
        for i in 0..c {
            for j in (i + 1)..c {
                g.add_edge(NodeId::from_index(offset + i), NodeId::from_index(offset + j))
                    .expect("clique edges are unique");
            }
        }
    }
    for b in 0..spec.bridges {
        g.add_edge(NodeId::from_index(b), NodeId::from_index(c + b))
            .expect("bridge edges are unique");
    }
    debug_assert_eq!(g.num_edges(), spec.num_edges());
    g
}

/// The exact graph of the paper's running example: 22 nodes, 111 edges.
pub fn paper_barbell() -> Graph {
    barbell_graph(BarbellSpec::paper())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_barbell_matches_published_counts() {
        let g = paper_barbell();
        assert_eq!(g.num_nodes(), 22, "paper: 22-node barbell");
        assert_eq!(g.num_edges(), 111, "paper: 111-edge barbell");
        g.validate().unwrap();
    }

    #[test]
    fn paper_conductance_closed_form() {
        // Φ(G) = 1/(C(11,2)+1) = 1/56 ≈ 0.018 (paper, running example).
        let phi = BarbellSpec::paper().clique_cut_conductance();
        assert!((phi - 1.0 / 56.0).abs() < 1e-12);
        assert!((phi - 0.018).abs() < 5e-4);
    }

    #[test]
    fn bridge_endpoints_are_0_and_c() {
        let g = paper_barbell();
        assert!(g.has_edge(NodeId(0), NodeId(11)));
        assert_eq!(g.degree(NodeId(0)), 11); // 10 clique + 1 bridge
        assert_eq!(g.degree(NodeId(1)), 10); // clique only
    }

    #[test]
    fn bridge_endpoints_share_no_common_neighbors() {
        // The bridge must never satisfy the Theorem 3 removal criterion.
        let g = paper_barbell();
        assert_eq!(g.common_neighbor_count(NodeId(0), NodeId(11)), 0);
    }

    #[test]
    fn intra_clique_edges_have_c_minus_2_common_neighbors() {
        let g = paper_barbell();
        assert_eq!(g.common_neighbor_count(NodeId(1), NodeId(2)), 9);
        assert_eq!(g.common_neighbor_count(NodeId(0), NodeId(1)), 9);
    }

    #[test]
    fn multi_bridge_barbell() {
        let spec = BarbellSpec { clique_size: 5, bridges: 3 };
        let g = barbell_graph(spec);
        assert_eq!(g.num_nodes(), spec.num_nodes());
        assert_eq!(g.num_edges(), spec.num_edges());
        assert!(g.has_edge(NodeId(0), NodeId(5)));
        assert!(g.has_edge(NodeId(1), NodeId(6)));
        assert!(g.has_edge(NodeId(2), NodeId(7)));
        assert!(!g.has_edge(NodeId(3), NodeId(8)));
    }

    #[test]
    #[should_panic(expected = "bridges must be in")]
    fn rejects_too_many_bridges() {
        let _ = barbell_graph(BarbellSpec { clique_size: 3, bridges: 4 });
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn rejects_tiny_cliques() {
        let _ = barbell_graph(BarbellSpec { clique_size: 1, bridges: 1 });
    }

    #[test]
    fn conductance_decreases_with_clique_size() {
        let small = BarbellSpec { clique_size: 4, bridges: 1 }.clique_cut_conductance();
        let large = BarbellSpec { clique_size: 12, bridges: 1 }.clique_cut_conductance();
        assert!(large < small, "bigger cliques mean worse bottleneck");
    }
}
