//! Watts–Strogatz small-world graphs.
//!
//! The paper's related-work section points at hybrid small-world models
//! (\[8\] Chung & Lu) as plausible OSN topologies. Watts–Strogatz gives the
//! canonical small-world control: a ring lattice (high clustering, long
//! mixing) whose rewiring probability `beta` interpolates toward a random
//! graph (low clustering, short mixing). Useful for sanity-checking that
//! MTO's gains shrink as community structure disappears.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::graph::Graph;

/// Samples a Watts–Strogatz graph: `n` nodes on a ring, each joined to its
/// `k` nearest neighbors (`k` even), then each lattice edge is rewired to a
/// uniform random endpoint with probability `beta`.
///
/// Rewiring keeps the graph simple: a rewire that would create a self-loop
/// or duplicate edge is skipped (the lattice edge is kept), matching the
/// common NetworkX semantics.
///
/// # Panics
/// Panics if `k` is odd, `k >= n`, or `beta` is outside `[0, 1]`.
pub fn watts_strogatz_graph<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(k % 2 == 0, "lattice degree k={k} must be even");
    assert!(k < n, "lattice degree k={k} must be below n={n}");
    assert!((0.0..=1.0).contains(&beta), "beta={beta} outside [0,1]");

    // Adjacency set mirror for O(1)-ish duplicate checks during rewiring.
    let mut neighbors: Vec<std::collections::BTreeSet<u32>> =
        vec![std::collections::BTreeSet::new(); n];
    let connect = |nbrs: &mut Vec<std::collections::BTreeSet<u32>>, u: u32, v: u32| {
        nbrs[u as usize].insert(v);
        nbrs[v as usize].insert(u);
    };

    for i in 0..n {
        for offset in 1..=(k / 2) {
            let j = (i + offset) % n;
            connect(&mut neighbors, i as u32, j as u32);
        }
    }

    // Rewire each original lattice edge (i, i+offset).
    for i in 0..n {
        for offset in 1..=(k / 2) {
            let j = ((i + offset) % n) as u32;
            let iu = i as u32;
            if rng.gen::<f64>() >= beta {
                continue;
            }
            // Propose a replacement endpoint.
            let w = rng.gen_range(0..n as u32);
            if w == iu || neighbors[i].contains(&w) {
                continue; // keep the lattice edge
            }
            // The edge may itself have been rewired away already by an
            // earlier proposal touching the same pair; skip if so.
            if !neighbors[i].remove(&j) {
                continue;
            }
            neighbors[j as usize].remove(&iu);
            connect(&mut neighbors, iu, w);
        }
    }

    let mut b = GraphBuilder::with_nodes(n);
    for (i, nbrs) in neighbors.iter().enumerate() {
        for &v in nbrs {
            if (i as u32) < v {
                b.add_edge_u32(i as u32, v);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::connected_components;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beta_zero_is_the_ring_lattice() {
        let g = watts_strogatz_graph(12, 4, 0.0, &mut StdRng::seed_from_u64(0));
        assert_eq!(g.num_edges(), 12 * 4 / 2);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        // Ring structure: 0 connects to 1, 2, 10, 11.
        let nbrs: Vec<u32> = g.neighbors(crate::NodeId(0)).iter().map(|x| x.0).collect();
        assert_eq!(nbrs, vec![1, 2, 10, 11]);
    }

    #[test]
    fn edge_count_is_preserved_by_rewiring() {
        let g = watts_strogatz_graph(100, 6, 0.3, &mut StdRng::seed_from_u64(5));
        assert_eq!(g.num_edges(), 100 * 6 / 2);
        g.validate().unwrap();
    }

    #[test]
    fn rewiring_changes_topology() {
        let lattice = watts_strogatz_graph(60, 4, 0.0, &mut StdRng::seed_from_u64(1));
        let rewired = watts_strogatz_graph(60, 4, 0.5, &mut StdRng::seed_from_u64(1));
        let lattice_edges: std::collections::BTreeSet<_> = lattice.edges().collect();
        let rewired_edges: std::collections::BTreeSet<_> = rewired.edges().collect();
        assert_ne!(lattice_edges, rewired_edges);
    }

    #[test]
    fn usually_stays_connected_for_moderate_beta() {
        // Not guaranteed in general, but k=6 with n=80 and beta=0.2 is far
        // inside the connected regime; a disconnection would indicate a bug.
        let g = watts_strogatz_graph(80, 6, 0.2, &mut StdRng::seed_from_u64(77));
        let comps = connected_components(&g);
        assert_eq!(comps.num_components(), 1);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn rejects_odd_k() {
        let _ = watts_strogatz_graph(10, 3, 0.1, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "below n")]
    fn rejects_k_too_large() {
        let _ = watts_strogatz_graph(4, 4, 0.1, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = watts_strogatz_graph(50, 4, 0.3, &mut StdRng::seed_from_u64(9));
        let b = watts_strogatz_graph(50, 4, 0.3, &mut StdRng::seed_from_u64(9));
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }
}
