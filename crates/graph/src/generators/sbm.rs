//! Stochastic block model (planted partition) generators.
//!
//! Real OSNs owe their low conductance to community structure (\[18\] in the
//! paper measured mixing times far above the theoretical expectations for
//! this reason). The SBM plants that structure explicitly: dense blocks,
//! sparse inter-block links. The experiment datasets blend SBM community
//! structure with Chung–Lu degree heterogeneity.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::graph::Graph;

/// Specification of a stochastic block model.
#[derive(Clone, Debug)]
pub struct SbmSpec {
    /// Number of nodes per block.
    pub block_sizes: Vec<usize>,
    /// Within-block link probability.
    pub p_in: f64,
    /// Between-block link probability (`p_out << p_in` gives the low
    /// conductance regime the paper targets).
    pub p_out: f64,
}

impl SbmSpec {
    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.block_sizes.iter().sum()
    }

    /// Block label of each node (nodes are numbered block by block).
    pub fn block_assignment(&self) -> Vec<usize> {
        let mut labels = Vec::with_capacity(self.num_nodes());
        for (b, &size) in self.block_sizes.iter().enumerate() {
            labels.extend(std::iter::repeat(b).take(size));
        }
        labels
    }
}

/// Samples an SBM graph. Nodes `0..s_0` belong to block 0, the next `s_1`
/// to block 1, and so on.
///
/// Pairs inside a block link with `p_in`, across blocks with `p_out`.
/// Geometric skipping is used within each (block, block) rectangle so the
/// cost is proportional to the number of edges, not pairs.
///
/// # Panics
/// Panics if either probability is outside `[0, 1]`.
pub fn sbm_graph<R: Rng + ?Sized>(spec: &SbmSpec, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&spec.p_in), "p_in={} outside [0,1]", spec.p_in);
    assert!((0.0..=1.0).contains(&spec.p_out), "p_out={} outside [0,1]", spec.p_out);
    let n = spec.num_nodes();
    let mut b = GraphBuilder::with_nodes(n);

    // Block boundary offsets.
    let mut starts = Vec::with_capacity(spec.block_sizes.len() + 1);
    let mut acc = 0usize;
    for &s in &spec.block_sizes {
        starts.push(acc);
        acc += s;
    }
    starts.push(acc);

    let nb = spec.block_sizes.len();
    for bi in 0..nb {
        for bj in bi..nb {
            let p = if bi == bj { spec.p_in } else { spec.p_out };
            if p <= 0.0 {
                continue;
            }
            let (lo_i, hi_i) = (starts[bi], starts[bi + 1]);
            let (lo_j, hi_j) = (starts[bj], starts[bj + 1]);
            if bi == bj {
                sample_triangle(&mut b, lo_i, hi_i, p, rng);
            } else {
                sample_rectangle(&mut b, lo_i, hi_i, lo_j, hi_j, p, rng);
            }
        }
    }
    b.build()
}

/// Two-block planted partition: the classic low-conductance benchmark.
pub fn planted_partition_graph<R: Rng + ?Sized>(
    nodes_per_block: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> Graph {
    sbm_graph(&SbmSpec { block_sizes: vec![nodes_per_block, nodes_per_block], p_in, p_out }, rng)
}

/// Bernoulli(p) sampling over unordered pairs inside `[lo, hi)` via
/// geometric jumps.
fn sample_triangle<R: Rng + ?Sized>(
    b: &mut GraphBuilder,
    lo: usize,
    hi: usize,
    p: f64,
    rng: &mut R,
) {
    let n = hi - lo;
    if n < 2 {
        return;
    }
    if p >= 1.0 {
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_edge_u32((lo + i) as u32, (lo + j) as u32);
            }
        }
        return;
    }
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    while (v as usize) < n {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        w += 1 + (r.ln() / log_q).floor() as i64;
        while w >= v && (v as usize) < n {
            w -= v;
            v += 1;
        }
        if (v as usize) < n {
            b.add_edge_u32((lo + w as usize) as u32, (lo + v as usize) as u32);
        }
    }
}

/// Bernoulli(p) sampling over the full rectangle `[lo_i, hi_i) × [lo_j, hi_j)`.
fn sample_rectangle<R: Rng + ?Sized>(
    b: &mut GraphBuilder,
    lo_i: usize,
    hi_i: usize,
    lo_j: usize,
    hi_j: usize,
    p: f64,
    rng: &mut R,
) {
    let rows = hi_i - lo_i;
    let cols = hi_j - lo_j;
    let total = (rows * cols) as i64;
    if total == 0 {
        return;
    }
    if p >= 1.0 {
        for i in 0..rows {
            for j in 0..cols {
                b.add_edge_u32((lo_i + i) as u32, (lo_j + j) as u32);
            }
        }
        return;
    }
    let log_q = (1.0 - p).ln();
    let mut idx: i64 = -1;
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        idx += 1 + (r.ln() / log_q).floor() as i64;
        if idx >= total {
            break;
        }
        let i = (idx as usize) / cols;
        let j = (idx as usize) % cols;
        b.add_edge_u32((lo_i + i) as u32, (lo_j + j) as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn block_assignment_is_contiguous() {
        let spec = SbmSpec { block_sizes: vec![3, 2, 4], p_in: 0.5, p_out: 0.1 };
        assert_eq!(spec.num_nodes(), 9);
        assert_eq!(spec.block_assignment(), vec![0, 0, 0, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn planted_partition_edge_counts_split_as_expected() {
        let mut rng = StdRng::seed_from_u64(17);
        let half = 200;
        let g = planted_partition_graph(half, 0.2, 0.01, &mut rng);
        let mut within = 0usize;
        let mut across = 0usize;
        for e in g.edges() {
            let (u, v) = e.endpoints();
            let bu = (u.index() >= half) as u8;
            let bv = (v.index() >= half) as u8;
            if bu == bv {
                within += 1;
            } else {
                across += 1;
            }
        }
        // Expectations: within ≈ 2 * C(200,2) * 0.2 = 7960, across ≈ 200*200*0.01 = 400.
        let exp_within = 2.0 * (half * (half - 1) / 2) as f64 * 0.2;
        let exp_across = (half * half) as f64 * 0.01;
        assert!((within as f64 - exp_within).abs() < 0.15 * exp_within, "within={within}");
        assert!((across as f64 - exp_across).abs() < 0.5 * exp_across, "across={across}");
        g.validate().unwrap();
    }

    #[test]
    fn p_in_one_builds_cliques() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = SbmSpec { block_sizes: vec![5, 5], p_in: 1.0, p_out: 0.0 };
        let g = sbm_graph(&spec, &mut rng);
        assert_eq!(g.num_edges(), 2 * 10); // two K5
        assert!(!g.has_edge(NodeId(0), NodeId(5)));
        assert!(g.has_edge(NodeId(0), NodeId(4)));
    }

    #[test]
    fn p_out_one_builds_complete_bipartite_between_blocks() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = SbmSpec { block_sizes: vec![3, 4], p_in: 0.0, p_out: 1.0 };
        let g = sbm_graph(&spec, &mut rng);
        assert_eq!(g.num_edges(), 12); // 3 * 4
        for i in 0..3u32 {
            for j in 3..7u32 {
                assert!(g.has_edge(NodeId(i), NodeId(j)));
            }
        }
    }

    #[test]
    fn empty_probabilities_give_empty_graph() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = SbmSpec { block_sizes: vec![10, 10], p_in: 0.0, p_out: 0.0 };
        let g = sbm_graph(&spec, &mut rng);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_nodes(), 20);
    }

    #[test]
    fn many_small_blocks() {
        let mut rng = StdRng::seed_from_u64(23);
        let spec = SbmSpec { block_sizes: vec![8; 10], p_in: 0.8, p_out: 0.02 };
        let g = sbm_graph(&spec, &mut rng);
        assert_eq!(g.num_nodes(), 80);
        assert!(g.num_edges() > 150);
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_probability() {
        let spec = SbmSpec { block_sizes: vec![4], p_in: 1.2, p_out: 0.0 };
        let _ = sbm_graph(&spec, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn deterministic_under_seed() {
        let spec = SbmSpec { block_sizes: vec![30, 30, 30], p_in: 0.3, p_out: 0.02 };
        let a = sbm_graph(&spec, &mut StdRng::seed_from_u64(5));
        let b = sbm_graph(&spec, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
