//! Graph generators.
//!
//! The paper evaluates on three kinds of topology (Section V-A.2):
//!
//! * **local real-world snapshots** (Epinions, Slashdot) — reproduced here
//!   by [`chung_lu_graph`] power-law graphs mixed with [`sbm_graph`] community
//!   structure (see `mto-experiments::datasets` for the calibrated stand-ins);
//! * **the Google Plus online graph** — a large [`chung_lu_graph`] graph
//!   served through the simulated interface in `mto-osn`;
//! * **synthetic latent-space graphs** ([`latent_space_graph`], Section IV-B).
//!
//! [`paper_barbell`] builds the 22-node/111-edge running example from Fig 1,
//! and the toy shapes ([`path_graph`], [`cycle_graph`], [`star_graph`],
//! [`complete_graph`]) feed unit and property tests.

mod barbell;
mod chung_lu;
mod erdos_renyi;
mod latent_space;
mod sbm;
mod watts_strogatz;

pub use barbell::{barbell_graph, paper_barbell, BarbellSpec};
pub use chung_lu::{chung_lu_graph, power_law_weights, ChungLuSpec};
pub use erdos_renyi::{gnm_graph, gnp_graph};
pub use latent_space::{latent_space_graph, LatentPoint, LatentSpaceModel, LatentSpaceSample};
pub use sbm::{planted_partition_graph, sbm_graph, SbmSpec};
pub use watts_strogatz::watts_strogatz_graph;

use crate::graph::Graph;
use crate::node::NodeId;

/// Path graph `P_n`: `0 - 1 - … - (n-1)`.
pub fn path_graph(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId::from_index(i - 1), NodeId::from_index(i))
            .expect("path edges are unique");
    }
    g
}

/// Cycle graph `C_n` (requires `n >= 3`).
///
/// # Panics
/// Panics for `n < 3`, where a simple cycle does not exist.
pub fn cycle_graph(n: usize) -> Graph {
    assert!(n >= 3, "cycle graph needs at least 3 nodes, got {n}");
    let mut g = path_graph(n);
    g.add_edge(NodeId::from_index(n - 1), NodeId(0)).expect("closing edge is unique");
    g
}

/// Star graph `S_n`: hub `0` joined to `n-1` leaves.
pub fn star_graph(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId(0), NodeId::from_index(i)).expect("star edges are unique");
    }
    g
}

/// Complete graph `K_n`.
pub fn complete_graph(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(NodeId::from_index(i), NodeId::from_index(j))
                .expect("complete-graph edges are unique");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_shape() {
        let g = path_graph(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(2)), 2);
    }

    #[test]
    fn path_graph_degenerate_sizes() {
        assert_eq!(path_graph(0).num_nodes(), 0);
        assert_eq!(path_graph(1).num_edges(), 0);
        assert_eq!(path_graph(2).num_edges(), 1);
    }

    #[test]
    fn cycle_graph_is_2_regular() {
        let g = cycle_graph(6);
        assert_eq!(g.num_edges(), 6);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn cycle_graph_rejects_tiny() {
        let _ = cycle_graph(2);
    }

    #[test]
    fn star_graph_shape() {
        let g = star_graph(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(NodeId(0)), 6);
        for i in 1..7 {
            assert_eq!(g.degree(NodeId(i)), 1);
        }
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete_graph(11);
        assert_eq!(g.num_edges(), 55); // C(11, 2) — one barbell half
        for v in g.nodes() {
            assert_eq!(g.degree(v), 10);
        }
        g.validate().unwrap();
    }
}
