//! Erdős–Rényi random graphs `G(n, p)` and `G(n, m)`.
//!
//! Used as "no community structure" controls in the experiments and as the
//! raw material of property tests (the removal/replacement theorems must be
//! sound on arbitrary topology, not just on nicely clustered graphs).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::builder::GraphBuilder;
use crate::graph::Graph;

/// Samples `G(n, p)`: every pair independently linked with probability `p`.
///
/// Uses the geometric skipping method (Batagelj–Brandes), `O(n + m)`
/// expected time, so sparse million-node graphs are cheap.
///
/// # Panics
/// Panics unless `0.0 <= p <= 1.0`.
pub fn gnp_graph<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability p={p} outside [0, 1]");
    let mut b = GraphBuilder::with_nodes(n);
    if p <= 0.0 || n < 2 {
        return b.build();
    }
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                b.add_edge_u32(u, v);
            }
        }
        return b.build();
    }
    // Walk the strictly-upper-triangular pair index with geometric jumps.
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    while (v as usize) < n {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        w += 1 + (r.ln() / log_q).floor() as i64;
        while w >= v && (v as usize) < n {
            w -= v;
            v += 1;
        }
        if (v as usize) < n {
            b.add_edge_u32(w as u32, v as u32);
        }
    }
    b.build()
}

/// Samples `G(n, m)`: exactly `m` distinct edges drawn uniformly among all
/// `C(n, 2)` pairs.
///
/// # Panics
/// Panics if `m > C(n, 2)`.
pub fn gnm_graph<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max_edges, "G(n={n}, m={m}) impossible: max {max_edges} edges");
    let mut b = GraphBuilder::with_nodes(n).with_edge_capacity(m);
    if m == 0 {
        return b.build();
    }
    // Dense request: sample by shuffling all pairs (exact, no rejection).
    if m * 3 >= max_edges {
        let mut pairs = Vec::with_capacity(max_edges);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                pairs.push((u, v));
            }
        }
        pairs.shuffle(rng);
        for &(u, v) in pairs.iter().take(m) {
            b.add_edge_u32(u, v);
        }
        return b.build();
    }
    // Sparse request: rejection-sample distinct pairs.
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    while seen.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.add_edge_u32(key.0, key.1);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty = gnp_graph(10, 0.0, &mut rng);
        assert_eq!(empty.num_edges(), 0);
        assert_eq!(empty.num_nodes(), 10);
        let full = gnp_graph(10, 1.0, &mut rng);
        assert_eq!(full.num_edges(), 45);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 400;
        let p = 0.05;
        let g = gnp_graph(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        // 5 sigma tolerance on a binomial.
        let sigma = (expected * (1.0 - p)).sqrt();
        assert!(
            (got - expected).abs() < 5.0 * sigma,
            "edges {got} too far from expectation {expected}"
        );
        g.validate().unwrap();
    }

    #[test]
    fn gnp_is_deterministic_under_seed() {
        let g1 = gnp_graph(50, 0.2, &mut StdRng::seed_from_u64(99));
        let g2 = gnp_graph(50, 0.2, &mut StdRng::seed_from_u64(99));
        assert_eq!(g1.num_edges(), g2.num_edges());
        for v in g1.nodes() {
            assert_eq!(g1.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn gnp_rejects_bad_probability() {
        let _ = gnp_graph(5, 1.5, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn gnm_exact_edge_count_sparse_and_dense() {
        let mut rng = StdRng::seed_from_u64(3);
        let sparse = gnm_graph(100, 50, &mut rng);
        assert_eq!(sparse.num_edges(), 50);
        sparse.validate().unwrap();
        let dense = gnm_graph(10, 40, &mut rng);
        assert_eq!(dense.num_edges(), 40);
        dense.validate().unwrap();
    }

    #[test]
    fn gnm_zero_edges() {
        let g = gnm_graph(5, 0, &mut StdRng::seed_from_u64(0));
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_nodes(), 5);
    }

    #[test]
    fn gnm_complete() {
        let g = gnm_graph(6, 15, &mut StdRng::seed_from_u64(0));
        assert_eq!(g.num_edges(), 15);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 5);
        }
    }

    #[test]
    #[should_panic(expected = "impossible")]
    fn gnm_rejects_overfull() {
        let _ = gnm_graph(4, 7, &mut StdRng::seed_from_u64(0));
    }
}
