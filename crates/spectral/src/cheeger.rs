//! Cheeger-type inequalities connecting conductance and the spectral gap.
//!
//! For the lazy walk with spectral gap `g = 1 − λ₂`, the classic bounds are
//! `Φ²/2 ≤ g_nonlazy` and `g_nonlazy ≤ 2Φ` for the *volume-normalized*
//! conductance. The paper's Definition 3 normalizes by edge counts
//! (each edge incident to `S` counted once), which differs from the volume
//! form by at most a factor of 2 — the helpers here expose both so the
//! experiments can sanity-check the spectral computations against the
//! combinatorial ones.

use mto_graph::Graph;

use crate::conductance::CutMetrics;

/// Volume-normalized conductance of a bipartition:
/// `|∂S| / min(vol S, vol S̄)` where `vol` sums degrees. This is the form
/// the Cheeger inequality is stated for.
pub fn volume_conductance_of_cut(g: &Graph, in_s: &[bool]) -> Option<f64> {
    assert_eq!(in_s.len(), g.num_nodes(), "membership vector length mismatch");
    let mut vol_s = 0usize;
    let mut cut = 0usize;
    for v in g.nodes() {
        if in_s[v.index()] {
            vol_s += g.degree(v);
        }
    }
    for e in g.edges() {
        let (u, v) = e.endpoints();
        if in_s[u.index()] != in_s[v.index()] {
            cut += 1;
        }
    }
    let vol_t = g.volume() - vol_s;
    let denom = vol_s.min(vol_t);
    if denom == 0 {
        None
    } else {
        Some(cut as f64 / denom as f64)
    }
}

/// Exact volume-normalized conductance via the same Gray-code sweep as
/// [`crate::conductance::exact_conductance`].
///
/// # Panics
/// Same constraints as the edge-count version.
pub fn exact_volume_conductance(g: &Graph) -> f64 {
    let n = g.num_nodes();
    assert!(n >= 2, "conductance needs at least two nodes");
    assert!(
        n <= crate::conductance::MAX_EXACT_NODES,
        "exact conductance capped at {} nodes",
        crate::conductance::MAX_EXACT_NODES
    );
    assert!(g.num_edges() > 0, "conductance of an edge-free graph is undefined");

    let mut in_s = vec![false; n];
    let mut cut = 0usize;
    let mut vol_s = 0usize;
    let vol = g.volume();
    let mut best = f64::INFINITY;
    let steps: u64 = 1u64 << (n - 1);
    for i in 1..steps {
        let flip = i.trailing_zeros() as usize;
        let v = mto_graph::NodeId::from_index(flip);
        let entering = !in_s[flip];
        for &u in g.neighbors(v) {
            if in_s[u.index()] == entering {
                cut -= 1;
            } else {
                cut += 1;
            }
        }
        if entering {
            vol_s += g.degree(v);
        } else {
            vol_s -= g.degree(v);
        }
        in_s[flip] = entering;
        let denom = vol_s.min(vol - vol_s);
        if denom > 0 {
            let phi = cut as f64 / denom as f64;
            if phi < best {
                best = phi;
            }
        }
    }
    best
}

/// Relationship between the paper's edge-count conductance and the volume
/// form for a single cut: `vol_phi <= edge_phi <= 2·vol_phi` (each internal
/// edge contributes twice to volume, once to the edge count; cut edges
/// contribute once/twice respectively).
pub fn edge_phi_bounds_from_volume(metrics: &CutMetrics) -> (f64, f64) {
    let edge_phi = metrics.phi().unwrap_or(f64::INFINITY);
    (edge_phi / 2.0, edge_phi)
}

/// Checks the Cheeger bracket `Φ_vol²/2 ≤ 1 − λ₂ ≤ 2 Φ_vol` and returns
/// `(lower, gap, upper)` for inspection.
pub fn cheeger_bracket(phi_vol: f64, lambda_2: f64) -> (f64, f64, f64) {
    (phi_vol * phi_vol / 2.0, 1.0 - lambda_2, 2.0 * phi_vol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::{jacobi_eigen, JacobiOptions};
    use crate::transition::symmetrized_transition;
    use mto_graph::generators::{complete_graph, cycle_graph, paper_barbell};

    #[test]
    fn volume_conductance_of_barbell_cut() {
        let g = paper_barbell();
        let mut in_s = vec![false; 22];
        for v in 0..11 {
            in_s[v] = true;
        }
        // cut 1, vol S = 2·55 + 1 = 111.
        let phi = volume_conductance_of_cut(&g, &in_s).unwrap();
        assert!((phi - 1.0 / 111.0).abs() < 1e-12);
    }

    #[test]
    fn exact_volume_conductance_of_barbell() {
        let g = paper_barbell();
        let phi = exact_volume_conductance(&g);
        assert!((phi - 1.0 / 111.0).abs() < 1e-12, "got {phi}");
    }

    #[test]
    fn volume_and_edge_forms_bracket_each_other() {
        let g = paper_barbell();
        let edge_phi = crate::conductance::exact_conductance(&g).phi;
        let vol_phi = exact_volume_conductance(&g);
        assert!(vol_phi <= edge_phi + 1e-12);
        assert!(edge_phi <= 2.0 * vol_phi + 1e-12);
    }

    #[test]
    fn cheeger_inequality_holds_on_samples() {
        use rand::{rngs::StdRng, SeedableRng};
        let graphs: Vec<Graph> = vec![paper_barbell(), complete_graph(10), cycle_graph(12), {
            let g = mto_graph::generators::gnp_graph(16, 0.3, &mut StdRng::seed_from_u64(3));
            mto_graph::algo::largest_component(&g).0
        }];
        for g in &graphs {
            if g.num_nodes() < 3 || g.min_degree() == 0 {
                continue;
            }
            let phi_vol = exact_volume_conductance(g);
            let e = jacobi_eigen(&symmetrized_transition(g), JacobiOptions::default());
            let lambda2 = e.values[1];
            let (lo, gap, hi) = cheeger_bracket(phi_vol, lambda2);
            assert!(lo <= gap + 1e-9, "{g:?}: Cheeger lower bound violated: {lo} > {gap}");
            assert!(gap <= hi + 1e-9, "{g:?}: Cheeger upper bound violated: {gap} > {hi}");
        }
    }

    #[test]
    fn edge_phi_bounds_helper() {
        let m = CutMetrics { cut: 1, within_s: 55, within_t: 55 };
        let (lo, hi) = edge_phi_bounds_from_volume(&m);
        assert!((hi - 1.0 / 56.0).abs() < 1e-12);
        assert!((lo - 0.5 / 56.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cut_returns_none() {
        let g = paper_barbell();
        let in_s = vec![false; 22];
        assert_eq!(volume_conductance_of_cut(&g, &in_s), None);
    }

    use mto_graph::Graph;
}
