//! CSR sparse matrix with just enough functionality for power iteration on
//! large OSN-scale graphs (hundreds of thousands of nodes).

/// Compressed-sparse-row matrix of `f64`.
#[derive(Clone, Debug)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_offsets: Vec<usize>,
    col_indices: Vec<u32>,
    values: Vec<f64>,
}

/// Builder accumulating triplets.
#[derive(Clone, Debug, Default)]
pub struct SparseBuilder {
    rows: usize,
    cols: usize,
    triplets: Vec<(u32, u32, f64)>,
}

impl SparseBuilder {
    /// New builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        SparseBuilder { rows, cols, triplets: Vec::new() }
    }

    /// Records `m[i][j] += v` (duplicate triplets are summed).
    ///
    /// # Panics
    /// Panics when indices exceed the declared shape.
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "triplet ({i},{j}) out of bounds");
        self.triplets.push((i as u32, j as u32, v));
    }

    /// Sorts, merges duplicates, and freezes into CSR.
    pub fn build(mut self) -> SparseMatrix {
        self.triplets.sort_unstable_by_key(|&(i, j, _)| (i, j));
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(self.triplets.len());
        for &(i, j, v) in &self.triplets {
            match merged.last_mut() {
                Some(last) if last.0 == i && last.1 == j => last.2 += v,
                _ => merged.push((i, j, v)),
            }
        }
        let mut row_offsets = vec![0usize; self.rows + 1];
        for &(i, _, _) in &merged {
            row_offsets[i as usize + 1] += 1;
        }
        for i in 0..self.rows {
            row_offsets[i + 1] += row_offsets[i];
        }
        SparseMatrix {
            rows: self.rows,
            cols: self.cols,
            row_offsets,
            col_indices: merged.iter().map(|t| t.1).collect(),
            values: merged.iter().map(|t| t.2).collect(),
        }
    }
}

impl SparseMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y = A x`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "shape mismatch in sparse matvec");
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// `y = A x` writing into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "shape mismatch in sparse matvec");
        assert_eq!(y.len(), self.rows, "output buffer shape mismatch");
        for i in 0..self.rows {
            let lo = self.row_offsets[i];
            let hi = self.row_offsets[i + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_indices[k] as usize];
            }
            y[i] = acc;
        }
    }

    /// Entry lookup (zero when absent); linear scan of the row.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let lo = self.row_offsets[i];
        let hi = self.row_offsets[i + 1];
        for k in lo..hi {
            if self.col_indices[k] as usize == j {
                return self.values[k];
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let mut b = SparseBuilder::new(3, 3);
        b.push(0, 1, 2.0);
        b.push(2, 0, -1.0);
        b.push(1, 1, 5.0);
        let m = b.build();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 1), 5.0);
        assert_eq!(m.get(2, 0), -1.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let mut b = SparseBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 0, 2.5);
        let m = b.build();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 3.5);
    }

    #[test]
    fn matvec_matches_dense() {
        let mut b = SparseBuilder::new(3, 3);
        b.push(0, 0, 1.0);
        b.push(0, 2, 2.0);
        b.push(1, 1, 3.0);
        b.push(2, 0, 4.0);
        let m = b.build();
        let y = m.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0, 4.0]);
    }

    #[test]
    fn empty_rows_are_fine() {
        let mut b = SparseBuilder::new(4, 4);
        b.push(3, 3, 1.0);
        let m = b.build();
        let y = m.matvec(&[1.0, 1.0, 1.0, 2.0]);
        assert_eq!(y, vec![0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn matvec_into_avoids_allocation() {
        let mut b = SparseBuilder::new(2, 2);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        let m = b.build();
        let mut y = vec![9.0, 9.0];
        m.matvec_into(&[3.0, 4.0], &mut y);
        assert_eq!(y, vec![4.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut b = SparseBuilder::new(2, 2);
        b.push(2, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matvec_shape_mismatch_panics() {
        let m = SparseBuilder::new(2, 2).build();
        let _ = m.matvec(&[1.0]);
    }
}
