//! Transition matrices of the simple random walk and its lazy variant.
//!
//! For the simple random walk of Definition 1, `P[u][v] = 1/k_u` for
//! `v ∈ N(u)`. Its stationary distribution is `π(v) = k_v / 2|E|`. The lazy
//! walk `(I + P)/2` shares `π` but has a nonnegative spectrum, which makes
//! `SLEM = λ₂` and mixing-time comparisons clean — the MTO-Sampler's
//! `rand(0,1) < 1/2` step in Algorithm 1 is exactly this laziness.
//!
//! All spectral work happens on the *similarity-symmetrized* matrix
//! `S = D^{1/2} P D^{-1/2}`, with `S[u][v] = 1/√(k_u k_v)` on edges: `S` is
//! symmetric with the same spectrum as `P`, so the Jacobi solver and the
//! deflated power iteration both apply.

use mto_graph::Graph;

use crate::dense::DenseMatrix;
use crate::sparse::{SparseBuilder, SparseMatrix};

/// Asserts the graph supports a random walk from every node.
fn check_no_isolated(g: &Graph) {
    assert!(g.num_nodes() > 0, "transition matrix of an empty graph");
    assert!(
        g.min_degree() >= 1,
        "graph has isolated nodes; the simple random walk is undefined there"
    );
}

/// Dense SRW transition matrix `P`.
pub fn srw_transition(g: &Graph) -> DenseMatrix {
    check_no_isolated(g);
    let n = g.num_nodes();
    let mut p = DenseMatrix::zeros(n, n);
    for u in g.nodes() {
        let ku = g.degree(u) as f64;
        for &v in g.neighbors(u) {
            p.set(u.index(), v.index(), 1.0 / ku);
        }
    }
    p
}

/// Dense lazy transition matrix `(I + P)/2`.
pub fn lazy_transition(g: &Graph) -> DenseMatrix {
    check_no_isolated(g);
    let n = g.num_nodes();
    let mut p = DenseMatrix::zeros(n, n);
    for u in g.nodes() {
        let ku = g.degree(u) as f64;
        p.set(u.index(), u.index(), 0.5);
        for &v in g.neighbors(u) {
            p.set(u.index(), v.index(), 0.5 / ku);
        }
    }
    p
}

/// Dense symmetrized walk matrix `S = D^{1/2} P D^{-1/2}`
/// (`S[u][v] = 1/√(k_u k_v)` on edges). Same spectrum as `P`.
pub fn symmetrized_transition(g: &Graph) -> DenseMatrix {
    check_no_isolated(g);
    let n = g.num_nodes();
    let mut s = DenseMatrix::zeros(n, n);
    for u in g.nodes() {
        let ku = g.degree(u) as f64;
        for &v in g.neighbors(u) {
            if v > u {
                let kv = g.degree(v) as f64;
                let w = 1.0 / (ku * kv).sqrt();
                s.set(u.index(), v.index(), w);
                s.set(v.index(), u.index(), w);
            }
        }
    }
    s
}

/// Dense symmetrized *lazy* walk matrix `(I + S)/2`; spectrum of the lazy
/// chain, all eigenvalues in `[0, 1]`.
pub fn symmetrized_lazy_transition(g: &Graph) -> DenseMatrix {
    let mut s = symmetrized_transition(g);
    let n = s.rows();
    for i in 0..n {
        for j in 0..n {
            let v = s.get(i, j) * 0.5 + if i == j { 0.5 } else { 0.0 };
            s.set(i, j, v);
        }
    }
    s
}

/// Sparse symmetrized walk matrix for large graphs.
pub fn sparse_symmetrized_transition(g: &Graph) -> SparseMatrix {
    check_no_isolated(g);
    let n = g.num_nodes();
    let mut b = SparseBuilder::new(n, n);
    for u in g.nodes() {
        let ku = g.degree(u) as f64;
        for &v in g.neighbors(u) {
            let kv = g.degree(v) as f64;
            b.push(u.index(), v.index(), 1.0 / (ku * kv).sqrt());
        }
    }
    b.build()
}

/// Sparse symmetrized *lazy* walk matrix `(I + S)/2` for large graphs; all
/// eigenvalues in `[0, 1]`.
pub fn sparse_symmetrized_lazy_transition(g: &Graph) -> SparseMatrix {
    check_no_isolated(g);
    let n = g.num_nodes();
    let mut b = SparseBuilder::new(n, n);
    for u in g.nodes() {
        let ku = g.degree(u) as f64;
        b.push(u.index(), u.index(), 0.5);
        for &v in g.neighbors(u) {
            let kv = g.degree(v) as f64;
            b.push(u.index(), v.index(), 0.5 / (ku * kv).sqrt());
        }
    }
    b.build()
}

/// Stationary distribution of the SRW (and its lazy variant):
/// `π(v) = k_v / 2|E|`.
pub fn stationary_distribution(g: &Graph) -> Vec<f64> {
    check_no_isolated(g);
    let vol = g.volume() as f64;
    g.nodes().map(|v| g.degree(v) as f64 / vol).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::{jacobi_eigen, JacobiOptions};
    use mto_graph::generators::{complete_graph, cycle_graph, path_graph};

    #[test]
    fn srw_rows_are_stochastic() {
        let g = path_graph(5);
        let p = srw_transition(&g);
        for s in p.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert_eq!(p.get(0, 1), 1.0);
        assert_eq!(p.get(1, 0), 0.5);
        assert_eq!(p.get(1, 2), 0.5);
        assert_eq!(p.get(1, 3), 0.0);
    }

    #[test]
    fn lazy_rows_are_stochastic_with_half_self_loop() {
        let g = cycle_graph(4);
        let p = lazy_transition(&g);
        for s in p.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
        for i in 0..4 {
            assert_eq!(p.get(i, i), 0.5);
        }
        assert_eq!(p.get(0, 1), 0.25);
    }

    #[test]
    fn stationary_is_degree_proportional_and_invariant() {
        let g = mto_graph::Graph::from_edges([(0u32, 1u32), (1, 2), (1, 3), (2, 3)]).unwrap();
        let pi = stationary_distribution(&g);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((pi[1] - 3.0 / 8.0).abs() < 1e-12);
        // πP = π.
        let p = srw_transition(&g);
        let pt = p.transpose();
        let pi_next = pt.matvec(&pi);
        for (a, b) in pi.iter().zip(&pi_next) {
            assert!((a - b).abs() < 1e-12, "π not invariant");
        }
    }

    #[test]
    fn symmetrized_shares_spectrum_with_p() {
        // For the cycle C_n the SRW spectrum is cos(2πk/n), all known.
        let g = cycle_graph(5);
        let s = symmetrized_transition(&g);
        assert!(s.is_symmetric(1e-15));
        let e = jacobi_eigen(&s, JacobiOptions::default());
        assert!((e.lambda_max() - 1.0).abs() < 1e-10);
        let expect = (2.0 * std::f64::consts::PI / 5.0).cos();
        assert!((e.values[1] - expect).abs() < 1e-10);
    }

    #[test]
    fn complete_graph_spectrum() {
        // K_n SRW: eigenvalues 1 and -1/(n-1) (multiplicity n-1).
        let g = complete_graph(6);
        let e = jacobi_eigen(&symmetrized_transition(&g), JacobiOptions::default());
        assert!((e.lambda_max() - 1.0).abs() < 1e-10);
        for &v in &e.values[1..] {
            assert!((v + 0.2).abs() < 1e-10, "expected -1/5, got {v}");
        }
        assert!((e.slem() - 0.2).abs() < 1e-10);
    }

    #[test]
    fn lazy_symmetrized_spectrum_is_nonnegative() {
        let g = cycle_graph(6); // bipartite: plain SRW has eigenvalue -1
        let plain = jacobi_eigen(&symmetrized_transition(&g), JacobiOptions::default());
        assert!(plain.lambda_min() < -0.99, "C6 SRW has eigenvalue -1");
        let lazy = jacobi_eigen(&symmetrized_lazy_transition(&g), JacobiOptions::default());
        assert!(lazy.lambda_min() > -1e-10, "lazy spectrum must be >= 0");
        assert!((lazy.lambda_max() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sparse_symmetrized_matches_dense() {
        let g = mto_graph::generators::paper_barbell();
        let dense = symmetrized_transition(&g);
        let sparse = sparse_symmetrized_transition(&g);
        for i in 0..g.num_nodes() {
            for j in 0..g.num_nodes() {
                assert!((dense.get(i, j) - sparse.get(i, j)).abs() < 1e-15);
            }
        }
    }

    #[test]
    #[should_panic(expected = "isolated")]
    fn isolated_nodes_are_rejected() {
        let mut g = path_graph(3);
        g.add_node();
        let _ = srw_transition(&g);
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn empty_graph_is_rejected() {
        let _ = srw_transition(&Graph::new());
    }
}
