//! Minimal dense row-major matrix used by the spectral machinery.
//!
//! The paper's spectral computations (SLEM, theoretical mixing time, Fig 10)
//! run on graphs of at most a few hundred nodes, where a plain dense matrix
//! plus a Jacobi eigensolver is both simplest and plenty fast. Larger
//! graphs go through [`crate::sparse`].

use std::fmt;

/// Dense `rows × cols` matrix of `f64`, row-major.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a generator `f(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = DenseMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Builds from nested arrays; rows must be equal length.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut m = DenseMatrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged row {i}");
            for (j, &x) in row.iter().enumerate() {
                m.set(i, j, x);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrow of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix–matrix product `self · other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "shape mismatch in matmul");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop streaming over rows.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let other_row = other.row(k);
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "shape mismatch in matvec");
        (0..self.rows).map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum()).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Whether `|a_ij − a_ji| <= tol` everywhere.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Square root of the sum of squared off-diagonal entries; the Jacobi
    /// sweep's convergence measure.
    pub fn off_diagonal_norm(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    let v = self.get(i, j);
                    s += v * v;
                }
            }
        }
        s.sqrt()
    }

    /// Largest absolute element-wise difference to another matrix.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// Sum of each row; a stochastic matrix has all row sums equal to 1.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral_for_matmul() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = DenseMatrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matvec_known_product() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 3.0, 0.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn symmetry_detection() {
        let s = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 5.0]]);
        assert!(s.is_symmetric(0.0));
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.1, 5.0]]);
        assert!(!a.is_symmetric(1e-6));
        assert!(a.is_symmetric(0.2));
        let rect = DenseMatrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1.0));
    }

    #[test]
    fn off_diagonal_norm_of_diagonal_matrix_is_zero() {
        let mut d = DenseMatrix::zeros(3, 3);
        d.set(0, 0, 4.0);
        d.set(1, 1, -2.0);
        assert_eq!(d.off_diagonal_norm(), 0.0);
        d.set(0, 1, 3.0);
        d.set(1, 0, 4.0);
        assert_eq!(d.off_diagonal_norm(), 5.0);
    }

    #[test]
    fn row_sums_of_stochastic_matrix() {
        let p = DenseMatrix::from_rows(&[vec![0.5, 0.5], vec![0.25, 0.75]]);
        for s in p.row_sums() {
            assert!((s - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn max_abs_diff_detects_perturbation() {
        let a = DenseMatrix::identity(3);
        let mut b = a.clone();
        b.set(2, 0, 0.25);
        assert_eq!(a.max_abs_diff(&b), 0.25);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
