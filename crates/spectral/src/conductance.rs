//! Graph conductance under the paper's Definition 3, exact cross-cutting
//! edge identification (Definition 4), and a spectral sweep heuristic for
//! graphs beyond brute force.
//!
//! The paper's conductance divides the cut size by the number of edges with
//! at least one endpoint on the smaller side (each edge counted once):
//!
//! ```text
//! Φ(G) = min_S  |∂S| / min(|E(S,V)|, |E(S̄,V)|)
//! ```
//!
//! For the barbell running example this gives `Φ = 1/(C(11,2)+1) = 1/56 ≈
//! 0.018`, matching the paper exactly.
//!
//! Exact minimization enumerates all bipartitions with a Gray-code sweep —
//! one vertex flips per step, so each step costs `O(deg)` instead of
//! `O(m)`. By complement symmetry only `2^{n-1}` masks are visited. This is
//! exponential and gated at [`MAX_EXACT_NODES`] nodes; the paper-scale toy
//! graphs (barbell: 22 nodes) are comfortably inside.

use std::collections::BTreeSet;

use mto_graph::{Edge, Graph, NodeId};

/// Largest graph (in nodes) accepted by the exact brute-force routines.
pub const MAX_EXACT_NODES: usize = 26;

/// Cap on how many minimizing cuts [`exact_conductance`] records.
pub const MAX_ARGMIN_CUTS: usize = 4096;

/// Edge counts of one bipartition `(S, S̄)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CutMetrics {
    /// Edges crossing the cut.
    pub cut: usize,
    /// Edges fully inside `S`.
    pub within_s: usize,
    /// Edges fully inside `S̄`.
    pub within_t: usize,
}

impl CutMetrics {
    /// Edges with at least one endpoint in `S`.
    pub fn touching_s(&self) -> usize {
        self.within_s + self.cut
    }

    /// Edges with at least one endpoint in `S̄`.
    pub fn touching_t(&self) -> usize {
        self.within_t + self.cut
    }

    /// `ϕ(S)` per Definition 3/4, or `None` when the denominator is zero
    /// (a side with no incident edges at all).
    pub fn phi(&self) -> Option<f64> {
        let denom = self.touching_s().min(self.touching_t());
        if denom == 0 {
            None
        } else {
            Some(self.cut as f64 / denom as f64)
        }
    }

    /// Exact rational comparison `ϕ(self) < ϕ(other)`; `None` denominators
    /// sort last.
    pub fn phi_less_than(&self, other: &CutMetrics) -> bool {
        let d1 = self.touching_s().min(self.touching_t());
        let d2 = other.touching_s().min(other.touching_t());
        match (d1, d2) {
            (0, _) => false,
            (_, 0) => true,
            _ => (self.cut as u128) * (d2 as u128) < (other.cut as u128) * (d1 as u128),
        }
    }

    /// Exact rational equality of the two ratios.
    pub fn phi_equals(&self, other: &CutMetrics) -> bool {
        let d1 = self.touching_s().min(self.touching_t());
        let d2 = other.touching_s().min(other.touching_t());
        match (d1, d2) {
            (0, 0) => true,
            (0, _) | (_, 0) => false,
            _ => (self.cut as u128) * (d2 as u128) == (other.cut as u128) * (d1 as u128),
        }
    }
}

/// Computes the metrics of an explicit bipartition given by membership
/// flags (`true` = in `S`).
///
/// # Panics
/// Panics if `in_s.len() != g.num_nodes()`.
pub fn cut_metrics(g: &Graph, in_s: &[bool]) -> CutMetrics {
    assert_eq!(in_s.len(), g.num_nodes(), "membership vector length mismatch");
    let mut m = CutMetrics { cut: 0, within_s: 0, within_t: 0 };
    for e in g.edges() {
        let (u, v) = e.endpoints();
        match (in_s[u.index()], in_s[v.index()]) {
            (true, true) => m.within_s += 1,
            (false, false) => m.within_t += 1,
            _ => m.cut += 1,
        }
    }
    m
}

/// Number of edges crossing the bipartition — the combinatorial core that
/// Theorem 3's "dragging" argument manipulates.
pub fn edge_boundary(g: &Graph, in_s: &[bool]) -> usize {
    cut_metrics(g, in_s).cut
}

/// Result of exact conductance minimization.
#[derive(Clone, Debug)]
pub struct ExactConductance {
    /// The minimum `ϕ(S)` over all nontrivial bipartitions with nonzero
    /// denominators; `f64::INFINITY` when no bipartition qualifies
    /// (edge-free graphs).
    pub phi: f64,
    /// A bitmask (bit `v` set ⇔ `v ∈ S`) achieving the minimum.
    pub best_cut: u64,
    /// All minimizing bitmasks (each recorded once with vertex `n-1` on the
    /// `S̄` side), possibly truncated at [`MAX_ARGMIN_CUTS`].
    pub argmin_cuts: Vec<u64>,
    /// Whether `argmin_cuts` hit the cap.
    pub truncated: bool,
}

impl ExactConductance {
    /// Metrics of the best cut on `g` (recomputed on demand).
    pub fn best_metrics(&self, g: &Graph) -> CutMetrics {
        cut_metrics(g, &mask_to_membership(self.best_cut, g.num_nodes()))
    }
}

/// Expands a bitmask into a membership vector.
pub fn mask_to_membership(mask: u64, n: usize) -> Vec<bool> {
    (0..n).map(|v| mask >> v & 1 == 1).collect()
}

/// Exact conductance by Gray-code enumeration of all bipartitions.
///
/// # Panics
/// Panics for graphs larger than [`MAX_EXACT_NODES`] nodes or without edges.
pub fn exact_conductance(g: &Graph) -> ExactConductance {
    let n = g.num_nodes();
    assert!(n >= 2, "conductance needs at least two nodes");
    assert!(
        n <= MAX_EXACT_NODES,
        "exact conductance is exponential; {n} nodes exceeds the {MAX_EXACT_NODES}-node cap"
    );
    assert!(g.num_edges() > 0, "conductance of an edge-free graph is undefined");

    let m = g.num_edges();
    // State: S = set bits of `mask`; updated incrementally.
    let mut in_s = vec![false; n];
    let mut metrics = CutMetrics { cut: 0, within_s: 0, within_t: m };
    let mut mask: u64 = 0;

    let mut best: Option<CutMetrics> = None;
    let mut best_masks: Vec<u64> = Vec::new();
    let mut truncated = false;

    // Gray-code walk over the 2^(n-1) subsets of {0, .., n-2}; vertex n-1
    // stays in S̄, which covers all bipartitions up to complement.
    let steps: u64 = 1u64 << (n - 1);
    for i in 1..steps {
        let flip = i.trailing_zeros() as usize;
        let v = NodeId::from_index(flip);
        let entering = !in_s[flip];
        for &u in g.neighbors(v) {
            let u_in_s = in_s[u.index()];
            if entering {
                if u_in_s {
                    metrics.cut -= 1;
                    metrics.within_s += 1;
                } else {
                    metrics.within_t -= 1;
                    metrics.cut += 1;
                }
            } else if u_in_s {
                metrics.within_s -= 1;
                metrics.cut += 1;
            } else {
                metrics.cut -= 1;
                metrics.within_t += 1;
            }
        }
        in_s[flip] = entering;
        mask ^= 1u64 << flip;

        if metrics.phi().is_none() {
            continue;
        }
        match &best {
            Some(b) if metrics.phi_equals(b) => {
                if best_masks.len() < MAX_ARGMIN_CUTS {
                    best_masks.push(mask);
                } else {
                    truncated = true;
                }
            }
            Some(b) if !metrics.phi_less_than(b) => {}
            _ => {
                best = Some(metrics);
                best_masks.clear();
                best_masks.push(mask);
                truncated = false;
            }
        }
    }

    match best {
        Some(b) => ExactConductance {
            phi: b.phi().expect("best cut has nonzero denominator"),
            best_cut: best_masks[0],
            argmin_cuts: best_masks,
            truncated,
        },
        None => ExactConductance {
            phi: f64::INFINITY,
            best_cut: 0,
            argmin_cuts: Vec::new(),
            truncated: false,
        },
    }
}

/// The cross-cutting edges of Definition 4: edges crossing *some*
/// conductance-minimizing bipartition.
///
/// # Panics
/// Panics when the argmin enumeration was truncated (pathologically many
/// minimizing cuts) — results would be incomplete.
pub fn cross_cutting_edges(g: &Graph) -> BTreeSet<Edge> {
    let result = exact_conductance(g);
    assert!(
        !result.truncated,
        "too many minimizing cuts ({}+) to enumerate cross-cutting edges exactly",
        MAX_ARGMIN_CUTS
    );
    let mut edges = BTreeSet::new();
    for &mask in &result.argmin_cuts {
        for e in g.edges() {
            let (u, v) = e.endpoints();
            if (mask >> u.index() & 1) != (mask >> v.index() & 1) {
                edges.insert(e);
            }
        }
    }
    edges
}

/// Whether the edge `(u, v)` is cross-cutting (Definition 4).
///
/// # Panics
/// As [`cross_cutting_edges`]; additionally if the edge is absent.
pub fn is_cross_cutting(g: &Graph, u: NodeId, v: NodeId) -> bool {
    assert!(g.has_edge(u, v), "({u}, {v}) is not an edge");
    cross_cutting_edges(g).contains(&Edge::new(u, v))
}

/// Conductance upper bound by a spectral sweep cut.
///
/// Computes the second eigenvector of the lazy symmetrized walk matrix by
/// deflated power iteration, orders vertices by `x(u)/√k_u`, and sweeps all
/// prefixes, returning the best `ϕ` seen and its membership vector. This is
/// the classic Cheeger-rounding certificate: always an upper bound on Φ,
/// usually tight on community-structured graphs.
///
/// # Panics
/// Panics on graphs with isolated nodes or fewer than 2 nodes.
pub fn sweep_conductance(g: &Graph) -> (f64, Vec<bool>) {
    use crate::power::{second_eigenvector_lazy, PowerIterationOptions};
    let n = g.num_nodes();
    assert!(n >= 2, "conductance needs at least two nodes");
    let (_lambda, x) = second_eigenvector_lazy(g, PowerIterationOptions::default());

    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by(|&a, &b| {
        let sa = x[a.index()] / (g.degree(a) as f64).sqrt();
        let sb = x[b.index()] / (g.degree(b) as f64).sqrt();
        sa.partial_cmp(&sb).expect("eigenvector has no NaN")
    });

    let m = g.num_edges();
    let mut in_s = vec![false; n];
    let mut metrics = CutMetrics { cut: 0, within_s: 0, within_t: m };
    let mut best_phi = f64::INFINITY;
    let mut best_prefix = 0usize;

    for (prefix, &v) in order.iter().enumerate().take(n - 1) {
        for &u in g.neighbors(v) {
            if in_s[u.index()] {
                metrics.cut -= 1;
                metrics.within_s += 1;
            } else {
                metrics.within_t -= 1;
                metrics.cut += 1;
            }
        }
        in_s[v.index()] = true;
        if let Some(phi) = metrics.phi() {
            if phi < best_phi {
                best_phi = phi;
                best_prefix = prefix + 1;
            }
        }
    }

    let mut best_membership = vec![false; n];
    for &v in order.iter().take(best_prefix) {
        best_membership[v.index()] = true;
    }
    (best_phi, best_membership)
}

/// Best-effort conductance: exact below [`MAX_EXACT_NODES`] nodes, spectral
/// sweep (upper bound) above.
pub fn conductance_estimate(g: &Graph) -> f64 {
    if g.num_nodes() <= MAX_EXACT_NODES {
        exact_conductance(g).phi
    } else {
        sweep_conductance(g).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::generators::{
        barbell_graph, complete_graph, cycle_graph, paper_barbell, path_graph, BarbellSpec,
    };

    #[test]
    fn barbell_conductance_matches_paper() {
        let g = paper_barbell();
        let result = exact_conductance(&g);
        assert!(
            (result.phi - 1.0 / 56.0).abs() < 1e-12,
            "paper: Φ(G) = 1/56 ≈ 0.018, got {}",
            result.phi
        );
    }

    #[test]
    fn barbell_minimizing_cut_is_the_clique_split() {
        let g = paper_barbell();
        let result = exact_conductance(&g);
        // The paper says the minimizing S/S̄ pair is unique: the two cliques.
        assert_eq!(result.argmin_cuts.len(), 1);
        let members = mask_to_membership(result.best_cut, 22);
        let side_a: usize = members.iter().filter(|&&b| b).count();
        assert_eq!(side_a, 11);
        // All of one clique on one side.
        let first = members[0];
        for v in 0..11 {
            assert_eq!(members[v], first);
        }
    }

    #[test]
    fn barbell_cross_cutting_edge_is_the_bridge() {
        let g = paper_barbell();
        let cc = cross_cutting_edges(&g);
        assert_eq!(cc.len(), 1);
        assert!(cc.contains(&Edge::new(NodeId(0), NodeId(11))));
        assert!(is_cross_cutting(&g, NodeId(0), NodeId(11)));
        assert!(!is_cross_cutting(&g, NodeId(0), NodeId(1)));
    }

    #[test]
    fn adding_a_bridge_raises_conductance_as_paper_says() {
        // Paper running example: one extra cross-clique edge lifts Φ from
        // 0.018 to 0.035.
        let one = barbell_graph(BarbellSpec { clique_size: 11, bridges: 1 });
        let two = barbell_graph(BarbellSpec { clique_size: 11, bridges: 2 });
        let phi1 = exact_conductance(&one).phi;
        let phi2 = exact_conductance(&two).phi;
        assert!((phi1 - 1.0 / 56.0).abs() < 1e-12);
        assert!((phi2 - 2.0 / 57.0).abs() < 1e-12, "got {phi2}");
        assert!((phi2 - 0.035).abs() < 5e-4, "paper reports 0.035");
    }

    #[test]
    fn complete_graph_conductance() {
        // K_n: the minimizing split is as balanced as possible. For K_6 and
        // |S|=3: cut 9, touching each side 3+9=12 ⇒ ϕ = 0.75.
        let g = complete_graph(6);
        let phi = exact_conductance(&g).phi;
        assert!((phi - 0.75).abs() < 1e-12, "got {phi}");
    }

    #[test]
    fn path_conductance_cuts_in_the_middle() {
        // P_4 (3 edges): S = half line: cut 1, touching = 2 each ⇒ 0.5.
        let g = path_graph(4);
        let phi = exact_conductance(&g).phi;
        assert!((phi - 0.5).abs() < 1e-12, "got {phi}");
    }

    #[test]
    fn cycle_conductance() {
        // C_8: opposite-arc split: cut 2, each side touches 3+2=5 ⇒ 0.4.
        let g = cycle_graph(8);
        let phi = exact_conductance(&g).phi;
        assert!((phi - 0.4).abs() < 1e-12, "got {phi}");
    }

    #[test]
    fn disconnected_graph_has_zero_conductance() {
        let g = Graph::from_edges([(0u32, 1u32), (2, 3)]).unwrap();
        let result = exact_conductance(&g);
        assert_eq!(result.phi, 0.0);
    }

    #[test]
    fn cut_metrics_by_hand() {
        let g = paper_barbell();
        let mut in_s = vec![false; 22];
        for v in 0..11 {
            in_s[v] = true;
        }
        let m = cut_metrics(&g, &in_s);
        assert_eq!(m.cut, 1);
        assert_eq!(m.within_s, 55);
        assert_eq!(m.within_t, 55);
        assert_eq!(m.touching_s(), 56);
        assert_eq!(m.phi(), Some(1.0 / 56.0));
        assert_eq!(edge_boundary(&g, &in_s), 1);
    }

    #[test]
    fn phi_comparisons_are_exact() {
        let a = CutMetrics { cut: 1, within_s: 55, within_t: 55 }; // 1/56
                                                                   // b: touching_s = 112, touching_t = 2 ⇒ Φ = 2/2 = 1.
        let b = CutMetrics { cut: 2, within_s: 110, within_t: 0 };
        assert!(a.phi_less_than(&b));
        assert!(!b.phi_less_than(&a));
        let c = CutMetrics { cut: 2, within_s: 110, within_t: 110 }; // 2/112 = 1/56
        assert!(a.phi_equals(&c));
        let zero = CutMetrics { cut: 0, within_s: 0, within_t: 0 };
        assert_eq!(zero.phi(), None);
        assert!(!zero.phi_less_than(&a));
        assert!(a.phi_less_than(&zero));
    }

    #[test]
    fn sweep_matches_exact_on_barbell() {
        let g = paper_barbell();
        let (phi, membership) = sweep_conductance(&g);
        assert!((phi - 1.0 / 56.0).abs() < 1e-9, "sweep found {phi}");
        let s_size = membership.iter().filter(|&&b| b).count();
        assert_eq!(s_size, 11);
    }

    #[test]
    fn sweep_is_an_upper_bound_on_random_graphs() {
        use rand::{rngs::StdRng, SeedableRng};
        for seed in 0..5u64 {
            let g = mto_graph::generators::gnp_graph(14, 0.4, &mut StdRng::seed_from_u64(seed));
            let (g, _) = mto_graph::algo::largest_component(&g);
            if g.num_nodes() < 4 || g.min_degree() == 0 {
                continue;
            }
            let exact = exact_conductance(&g).phi;
            let (sweep, _) = sweep_conductance(&g);
            assert!(sweep >= exact - 1e-9, "sweep {sweep} below exact {exact} (seed {seed})");
        }
    }

    #[test]
    fn conductance_estimate_dispatches() {
        let g = paper_barbell();
        assert!((conductance_estimate(&g) - 1.0 / 56.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn exact_rejects_large_graphs() {
        let g = complete_graph(MAX_EXACT_NODES + 1);
        let _ = exact_conductance(&g);
    }

    #[test]
    #[should_panic(expected = "edge-free")]
    fn exact_rejects_edge_free() {
        let _ = exact_conductance(&Graph::with_nodes(3));
    }

    use mto_graph::Graph;
}
