//! # mto-spectral — spectral substrate for the MTO-Sampler reproduction
//!
//! Dense and sparse linear algebra, eigensolvers, and the graph-theoretic
//! quantities the paper reasons with:
//!
//! * [`conductance`] — the paper's Definition 3 conductance, exact
//!   brute-force minimization (Gray-code sweep), cross-cutting edge
//!   identification (Definition 4), and a spectral sweep-cut heuristic;
//! * [`mixing`] — relative point-wise distance `Δ(t)` (Definition 2),
//!   SLEM-based theoretical mixing time (footnote 12), and the Eq. (3)–(6)
//!   conductance bounds, unit-tested against every number the paper's
//!   running example quotes;
//! * [`transition`] — SRW / lazy transition matrices and their symmetrized
//!   forms; [`jacobi`] and [`power`] — eigensolvers (dense full spectrum,
//!   sparse deflated power iteration).
//!
//! ## Example: the paper's running example, verified
//!
//! ```
//! use mto_graph::generators::paper_barbell;
//! use mto_spectral::conductance::exact_conductance;
//!
//! let g = paper_barbell();
//! let phi = exact_conductance(&g).phi;
//! assert!((phi - 1.0 / 56.0).abs() < 1e-12); // paper: Φ(G) = 0.018
//! ```

#![warn(missing_docs)]

pub mod cheeger;
pub mod conductance;
pub mod dense;
pub mod jacobi;
pub mod mixing;
pub mod power;
pub mod sparse;
pub mod transition;

pub use conductance::{
    conductance_estimate, cross_cutting_edges, cut_metrics, exact_conductance, is_cross_cutting,
    CutMetrics, ExactConductance,
};
pub use dense::DenseMatrix;
pub use jacobi::{jacobi_eigen, EigenDecomposition, JacobiOptions};
pub use mixing::{slem_mixing_time, MixingAnalysis};
pub use power::{slem_power_iteration, PowerIterationOptions, SlemEstimate};
pub use sparse::{SparseBuilder, SparseMatrix};
pub use transition::{lazy_transition, srw_transition, stationary_distribution};
