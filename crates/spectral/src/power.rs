//! Deflated power iteration: SLEM estimation for graphs too large for the
//! dense Jacobi solver.
//!
//! The symmetrized walk matrix `S = D^{1/2} P D^{-1/2}` has a *known*
//! Perron eigenvector `v₁(u) = √k_u / √(2|E|)`. Projecting it out each
//! step, power iteration converges to the eigenvalue of second-largest
//! modulus — exactly the SLEM the paper's footnote 12 uses for theoretical
//! mixing time. The estimate uses `‖Sx‖/‖x‖`, which converges to `|λ|`
//! even when the dominant remaining eigenvalue is negative (bipartite-ish
//! graphs).

use mto_graph::Graph;

use crate::sparse::SparseMatrix;
use crate::transition::sparse_symmetrized_transition;

/// Options for the deflated power iteration.
#[derive(Clone, Copy, Debug)]
pub struct PowerIterationOptions {
    /// Maximum iterations before giving up.
    pub max_iterations: usize,
    /// Relative change in the eigenvalue estimate treated as converged.
    pub tolerance: f64,
    /// Seed for the random start vector.
    pub seed: u64,
}

impl Default for PowerIterationOptions {
    fn default() -> Self {
        PowerIterationOptions { max_iterations: 5000, tolerance: 1e-10, seed: 0x5EED }
    }
}

/// Outcome of a power-iteration SLEM estimate.
#[derive(Clone, Copy, Debug)]
pub struct SlemEstimate {
    /// The estimated second-largest eigenvalue modulus.
    pub slem: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether the tolerance was met (otherwise the estimate is the last
    /// iterate and should be treated as approximate).
    pub converged: bool,
}

fn norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Estimates the SLEM of the SRW on `g` via deflated power iteration on the
/// sparse symmetrized transition matrix.
///
/// # Panics
/// Panics on graphs with isolated nodes (no SRW) or fewer than 2 nodes.
pub fn slem_power_iteration(g: &Graph, opts: PowerIterationOptions) -> SlemEstimate {
    assert!(g.num_nodes() >= 2, "SLEM needs at least two nodes");
    let s = sparse_symmetrized_transition(g);
    let vol = g.volume() as f64;
    let v1: Vec<f64> = g.nodes().map(|v| (g.degree(v) as f64 / vol).sqrt()).collect();
    slem_power_iteration_matrix(&s, &v1, opts)
}

/// Power iteration on an explicit symmetric matrix with known unit Perron
/// vector `v1` to deflate.
///
/// # Panics
/// Panics if shapes disagree or the matrix is not square.
pub fn slem_power_iteration_matrix(
    s: &SparseMatrix,
    v1: &[f64],
    opts: PowerIterationOptions,
) -> SlemEstimate {
    assert_eq!(s.rows(), s.cols(), "matrix must be square");
    assert_eq!(s.rows(), v1.len(), "Perron vector length mismatch");
    let n = s.rows();

    // Deterministic pseudo-random start vector.
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();

    let deflate = |x: &mut Vec<f64>| {
        let c = dot(x, v1);
        for (xi, vi) in x.iter_mut().zip(v1) {
            *xi -= c * vi;
        }
    };

    deflate(&mut x);
    let nx = norm(&x);
    if nx < 1e-300 {
        // Degenerate start (possible only for n=1 effective spaces).
        return SlemEstimate { slem: 0.0, iterations: 0, converged: true };
    }
    for v in &mut x {
        *v /= nx;
    }

    let mut estimate = 0.0f64;
    let mut y = vec![0.0; n];
    for it in 1..=opts.max_iterations {
        s.matvec_into(&x, &mut y);
        // Re-deflate to counter numerical drift back toward v1.
        let c = dot(&y, v1);
        for (yi, vi) in y.iter_mut().zip(v1) {
            *yi -= c * vi;
        }
        let ny = norm(&y);
        if ny < 1e-300 {
            // S annihilates the deflated space: SLEM is 0 (star-like).
            return SlemEstimate { slem: 0.0, iterations: it, converged: true };
        }
        let new_estimate = ny; // ‖Sx‖ with ‖x‖=1 → |λ| at convergence
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / ny;
        }
        if (new_estimate - estimate).abs() <= opts.tolerance * new_estimate.max(1e-12) {
            return SlemEstimate { slem: new_estimate, iterations: it, converged: true };
        }
        estimate = new_estimate;
    }
    SlemEstimate { slem: estimate, iterations: opts.max_iterations, converged: false }
}

/// Second eigenpair of the *lazy* symmetrized walk matrix `(I + S)/2`.
///
/// Because the lazy spectrum lives in `[0, 1]`, the dominant eigenvalue of
/// the deflated space is the algebraic `λ₂` and its eigenvector is exactly
/// the vector the spectral sweep cut needs. Returns `(λ₂, x)` with `x` a
/// unit vector in the symmetrized coordinates (divide by `√k_u` to get the
/// walk-space embedding).
///
/// # Panics
/// Panics on graphs with isolated nodes or fewer than 2 nodes.
pub fn second_eigenvector_lazy(g: &Graph, opts: PowerIterationOptions) -> (f64, Vec<f64>) {
    assert!(g.num_nodes() >= 2, "second eigenvector needs at least two nodes");
    let s = crate::transition::sparse_symmetrized_lazy_transition(g);
    let vol = g.volume() as f64;
    let v1: Vec<f64> = g.nodes().map(|v| (g.degree(v) as f64 / vol).sqrt()).collect();

    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let n = g.num_nodes();
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();

    let mut lambda = 0.0f64;
    let mut y = vec![0.0; n];
    for _ in 0..opts.max_iterations {
        // Deflate then multiply.
        let c = dot(&x, &v1);
        for (xi, vi) in x.iter_mut().zip(&v1) {
            *xi -= c * vi;
        }
        let nx = norm(&x);
        if nx < 1e-300 {
            return (0.0, x);
        }
        for v in &mut x {
            *v /= nx;
        }
        s.matvec_into(&x, &mut y);
        let new_lambda = dot(&x, &y); // Rayleigh quotient; spectrum >= 0
        std::mem::swap(&mut x, &mut y);
        if (new_lambda - lambda).abs() <= opts.tolerance * new_lambda.abs().max(1e-12) {
            lambda = new_lambda;
            break;
        }
        lambda = new_lambda;
    }
    // Final cleanup: deflate and normalize the returned vector.
    let c = dot(&x, &v1);
    for (xi, vi) in x.iter_mut().zip(&v1) {
        *xi -= c * vi;
    }
    let nx = norm(&x);
    if nx > 1e-300 {
        for v in &mut x {
            *v /= nx;
        }
    }
    (lambda, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::{jacobi_eigen, JacobiOptions};
    use crate::transition::symmetrized_transition;
    use mto_graph::generators::{complete_graph, cycle_graph, paper_barbell, star_graph};

    fn jacobi_slem(g: &Graph) -> f64 {
        jacobi_eigen(&symmetrized_transition(g), JacobiOptions::default()).slem()
    }

    #[test]
    fn matches_jacobi_on_complete_graph() {
        let g = complete_graph(8);
        let est = slem_power_iteration(&g, PowerIterationOptions::default());
        assert!(est.converged);
        assert!((est.slem - jacobi_slem(&g)).abs() < 1e-7, "got {}", est.slem);
    }

    #[test]
    fn matches_jacobi_on_barbell() {
        let g = paper_barbell();
        let est = slem_power_iteration(&g, PowerIterationOptions::default());
        assert!(est.converged);
        let exact = jacobi_slem(&g);
        assert!((est.slem - exact).abs() < 1e-6, "power {} vs jacobi {exact}", est.slem);
        // The barbell mixes terribly: SLEM very close to 1 (Cheeger with
        // volume conductance 1/111 guarantees λ₂ ≥ 1 − 2/111 ≈ 0.982).
        assert!(est.slem > 0.98, "got {}", est.slem);
    }

    #[test]
    fn handles_negative_dominant_eigenvalue() {
        // Even cycles are bipartite: λ_n = -1 dominates |λ_2|.
        let g = cycle_graph(8);
        let est = slem_power_iteration(&g, PowerIterationOptions::default());
        assert!((est.slem - 1.0).abs() < 1e-6, "bipartite SLEM is 1, got {}", est.slem);
    }

    #[test]
    fn star_graph_slem() {
        // Star: SRW eigenvalues {1, 0^(n-2), -1}; SLEM = 1 (bipartite).
        let g = star_graph(10);
        let est = slem_power_iteration(&g, PowerIterationOptions::default());
        assert!((est.slem - 1.0).abs() < 1e-6);
    }

    #[test]
    fn matches_jacobi_on_random_graph() {
        use rand::{rngs::StdRng, SeedableRng};
        let g = mto_graph::generators::gnp_graph(40, 0.3, &mut StdRng::seed_from_u64(14));
        let (g, _) = mto_graph::algo::largest_component(&g);
        let est = slem_power_iteration(&g, PowerIterationOptions::default());
        let exact = jacobi_slem(&g);
        assert!((est.slem - exact).abs() < 1e-6, "power {} vs jacobi {exact}", est.slem);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = paper_barbell();
        let a = slem_power_iteration(&g, PowerIterationOptions::default());
        let b = slem_power_iteration(&g, PowerIterationOptions::default());
        assert_eq!(a.slem, b.slem);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_single_node() {
        let mut g = Graph::new();
        g.add_node();
        let _ = slem_power_iteration(&g, PowerIterationOptions::default());
    }

    #[test]
    fn second_eigenvector_lazy_matches_jacobi() {
        let g = paper_barbell();
        let (lambda, x) = second_eigenvector_lazy(&g, PowerIterationOptions::default());
        let lazy = crate::transition::symmetrized_lazy_transition(&g);
        let e = jacobi_eigen(&lazy, JacobiOptions::default());
        assert!((lambda - e.values[1]).abs() < 1e-6, "power λ2 {lambda} vs jacobi {}", e.values[1]);
        // Vector should be the λ2 eigenvector up to sign.
        let dot_abs: f64 = x.iter().zip(&e.vectors[1]).map(|(a, b)| a * b).sum::<f64>().abs();
        assert!(dot_abs > 1.0 - 1e-4, "vectors misaligned: |<x, v2>| = {dot_abs}");
    }

    #[test]
    fn second_eigenvector_separates_barbell_cliques() {
        // The λ2 eigenvector of the barbell is the community indicator:
        // one clique positive, the other negative.
        let g = paper_barbell();
        let (_, x) = second_eigenvector_lazy(&g, PowerIterationOptions::default());
        let side_a = x[0].signum();
        for v in 0..11 {
            assert_eq!(x[v].signum(), side_a, "clique A node {v} flipped");
        }
        for v in 11..22 {
            assert_eq!(x[v].signum(), -side_a, "clique B node {v} on wrong side");
        }
    }

    use mto_graph::Graph;
}
