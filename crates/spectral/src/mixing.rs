//! Mixing time: exact relative point-wise distance, SLEM-based theoretical
//! mixing time (footnote 12 of the paper), and the conductance bounds of
//! Eq. (3)–(6).
//!
//! The paper's running example quantifies everything through the upper
//! bound of Eq. (4): `Δ(t) ≤ (2|E|/min_v k_v) (1 − Φ²/2)^t`, giving a
//! mixing-time bound of `ln(c/ε) / −ln(1 − Φ²/2)`, which the paper reports
//! as a coefficient of `log₁₀(c/ε)` — e.g. `14212.3 · log(22.2/ε)` for the
//! barbell. Those exact constants are unit-tested here.

use mto_graph::Graph;

use crate::dense::DenseMatrix;
use crate::jacobi::{jacobi_eigen, EigenDecomposition, JacobiOptions};
use crate::transition::{
    stationary_distribution, symmetrized_lazy_transition, symmetrized_transition,
};

/// Relative point-wise distance `Δ(t) = max_{u,v} |Pᵗ(u,v) − π(v)| / π(v)`
/// (Definition 2, taken over all node pairs).
pub fn relative_pointwise_distance(p_t: &DenseMatrix, pi: &[f64]) -> f64 {
    assert_eq!(p_t.rows(), p_t.cols(), "transition power must be square");
    assert_eq!(p_t.rows(), pi.len(), "π length mismatch");
    let mut worst = 0.0f64;
    for u in 0..p_t.rows() {
        for (v, &pv) in pi.iter().enumerate() {
            let d = (p_t.get(u, v) - pv).abs() / pv;
            if d > worst {
                worst = d;
            }
        }
    }
    worst
}

/// Machinery for evaluating `Δ(t)` at arbitrary `t` from one
/// eigendecomposition: `Pᵗ = D^{-1/2} Q Λᵗ Qᵀ D^{1/2}`.
pub struct MixingAnalysis {
    eigen: EigenDecomposition,
    /// `√k_u` per node.
    sqrt_deg: Vec<f64>,
    pi: Vec<f64>,
    /// Whether the lazy chain was analyzed.
    pub lazy: bool,
}

impl MixingAnalysis {
    /// Eigendecomposes the (lazy) walk on `g`.
    ///
    /// # Panics
    /// Panics for graphs with isolated nodes (no SRW) or over ~400 nodes
    /// (dense eigendecomposition becomes unreasonable).
    pub fn new(g: &Graph, lazy: bool) -> Self {
        assert!(
            g.num_nodes() <= 400,
            "dense mixing analysis capped at 400 nodes, got {}",
            g.num_nodes()
        );
        let s = if lazy { symmetrized_lazy_transition(g) } else { symmetrized_transition(g) };
        let eigen = jacobi_eigen(&s, JacobiOptions::default());
        let sqrt_deg = g.nodes().map(|v| (g.degree(v) as f64).sqrt()).collect();
        let pi = stationary_distribution(g);
        MixingAnalysis { eigen, sqrt_deg, pi, lazy }
    }

    /// The SLEM `µ = max(|λ₂|, |λ_n|)`.
    pub fn slem(&self) -> f64 {
        self.eigen.slem()
    }

    /// Theoretical mixing time `1 / ln(1/µ)` (paper footnote 12). Infinite
    /// when `µ >= 1` (disconnected or non-lazy bipartite chains).
    pub fn theoretical_mixing_time(&self) -> f64 {
        slem_mixing_time(self.slem())
    }

    /// Evaluates `Δ(t)` exactly from the spectrum.
    pub fn delta(&self, t: u32) -> f64 {
        let n = self.pi.len();
        let mut worst = 0.0f64;
        // P^t(u,v) = Σ_k λ_k^t q_k(u) q_k(v) √(k_v/k_u); the k=0 term is
        // exactly π(v), so the deviation is the k>=1 sum.
        for u in 0..n {
            for v in 0..n {
                let mut dev = 0.0;
                for k in 1..n {
                    let lam = self.eigen.values[k];
                    dev += lam.powi(t as i32) * self.eigen.vectors[k][u] * self.eigen.vectors[k][v];
                }
                dev *= self.sqrt_deg[v] / self.sqrt_deg[u];
                let rel = dev.abs() / self.pi[v];
                if rel > worst {
                    worst = rel;
                }
            }
        }
        worst
    }

    /// Smallest `t` with `Δ(t) <= epsilon`, found by doubling + binary
    /// search (valid because the eigenvalue envelope decays geometrically).
    /// Returns `None` if not reached within `t_max`.
    pub fn mixing_time(&self, epsilon: f64, t_max: u32) -> Option<u32> {
        assert!(epsilon > 0.0, "epsilon must be positive");
        if self.delta(1) <= epsilon {
            return Some(1);
        }
        // Exponential search for an upper bracket.
        let mut hi = 2u32;
        while self.delta(hi) > epsilon {
            if hi >= t_max {
                return None;
            }
            hi = (hi * 2).min(t_max);
        }
        let mut lo = hi / 2; // delta(lo) > eps, delta(hi) <= eps
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if self.delta(mid) <= epsilon {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

/// Footnote-12 theoretical mixing time `1 / ln(1/µ)`.
pub fn slem_mixing_time(slem: f64) -> f64 {
    if slem <= 0.0 {
        0.0
    } else if slem >= 1.0 {
        f64::INFINITY
    } else {
        1.0 / (1.0 / slem).ln()
    }
}

/// The paper's Eq. (3) lower envelope: `(1 − 2Φ)ᵗ <= Δ(t)`.
pub fn lower_bound_distance(phi: f64, t: u32) -> f64 {
    (1.0 - 2.0 * phi).max(0.0).powi(t as i32)
}

/// The paper's Eq. (3)/(4) upper envelope:
/// `Δ(t) <= (2|E| / min_k) (1 − Φ²/2)ᵗ`.
pub fn upper_bound_distance(phi: f64, t: u32, num_edges: usize, min_degree: usize) -> f64 {
    assert!(min_degree > 0, "min degree must be positive");
    let c = 2.0 * num_edges as f64 / min_degree as f64;
    c * (1.0 - phi * phi / 2.0).powi(t as i32)
}

/// Mixing-time upper bound from Eq. (5): smallest `t` guaranteeing
/// `Δ(t) <= ε`, i.e. `t >= ln(c/ε) / −ln(1 − Φ²/2)` with
/// `c = 2|E|/min_k`.
pub fn mixing_time_upper_bound(phi: f64, epsilon: f64, num_edges: usize, min_degree: usize) -> f64 {
    assert!(phi > 0.0 && phi <= 1.0, "need 0 < Φ <= 1, got {phi}");
    assert!(epsilon > 0.0, "epsilon must be positive");
    let c = 2.0 * num_edges as f64 / min_degree as f64;
    (c / epsilon).ln() / -(1.0 - phi * phi / 2.0).ln()
}

/// The coefficient the paper multiplies `log₁₀(c/ε)` by when quoting
/// mixing-time bounds: `ln(10) / −ln(1 − Φ²/2)`.
///
/// Running example: `Φ = 0.018 → 14212.3`, `0.035 → 3758.1 (≈3759)`,
/// `0.053 → 1638.3`, `0.105 → 416.6`.
pub fn mixing_bound_log10_coefficient(phi: f64) -> f64 {
    assert!(phi > 0.0 && phi <= 1.0, "need 0 < Φ <= 1, got {phi}");
    std::f64::consts::LN_10 / -(1.0 - phi * phi / 2.0).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::{lazy_transition, srw_transition};
    use mto_graph::generators::{complete_graph, cycle_graph, paper_barbell};

    #[test]
    fn paper_running_example_coefficients() {
        // Section II-D and III: the four bound coefficients the paper quotes.
        assert!((mixing_bound_log10_coefficient(0.018) - 14212.3).abs() < 1.0);
        assert!((mixing_bound_log10_coefficient(0.035) - 3759.1).abs() < 1.5);
        assert!((mixing_bound_log10_coefficient(0.053) - 1638.3).abs() < 1.0);
        assert!((mixing_bound_log10_coefficient(0.105) - 416.6).abs() < 0.5);
    }

    #[test]
    fn paper_conductance_change_example() {
        // Section II-D: "increasing conductance from 0.010 to 0.012 will
        // change the mixing time from 46050.5·log(c/ε) to 31979.1·log(c/ε)".
        // Same log₁₀ coefficient as the running example.
        let a = mixing_bound_log10_coefficient(0.010);
        let b = mixing_bound_log10_coefficient(0.012);
        assert!((a - 46050.5).abs() < 2.0, "got {a}");
        assert!((b - 31979.1).abs() < 2.0, "got {b}");
    }

    #[test]
    fn paper_mixing_reduction_ratios() {
        // Running example: removal cuts the bound to 0.115 of the original,
        // replacement to 0.029 overall.
        let orig = mixing_bound_log10_coefficient(0.018);
        let removed = mixing_bound_log10_coefficient(0.053);
        let replaced = mixing_bound_log10_coefficient(0.105);
        assert!((removed / orig - 0.115).abs() < 0.003, "got {}", removed / orig);
        assert!((replaced / orig - 0.029).abs() < 0.002, "got {}", replaced / orig);
    }

    #[test]
    fn delta_matches_direct_matrix_power() {
        let g = paper_barbell();
        let analysis = MixingAnalysis::new(&g, true);
        let p = lazy_transition(&g);
        let pi = stationary_distribution(&g);
        // P^4 by repeated multiplication.
        let mut pt = p.clone();
        for _ in 0..3 {
            pt = pt.matmul(&p);
        }
        let direct = relative_pointwise_distance(&pt, &pi);
        let spectral = analysis.delta(4);
        assert!((direct - spectral).abs() < 1e-8, "direct {direct} vs spectral {spectral}");
    }

    #[test]
    fn delta_decreases_with_time_on_lazy_chain() {
        let g = paper_barbell();
        let analysis = MixingAnalysis::new(&g, true);
        let d1 = analysis.delta(1);
        let d10 = analysis.delta(10);
        let d100 = analysis.delta(100);
        assert!(d1 > d10 && d10 > d100, "{d1} {d10} {d100}");
    }

    #[test]
    fn complete_graph_mixes_almost_instantly() {
        let g = complete_graph(12);
        let analysis = MixingAnalysis::new(&g, false);
        let t = analysis.mixing_time(0.01, 100).expect("K12 mixes fast");
        assert!(t <= 5, "K12 should mix in a few steps, got {t}");
    }

    #[test]
    fn barbell_mixes_slowly() {
        let g = paper_barbell();
        let analysis = MixingAnalysis::new(&g, true);
        let t_barbell = analysis.mixing_time(0.25, 100_000).expect("mixes eventually");
        let k = complete_graph(22);
        let t_complete = MixingAnalysis::new(&k, true).mixing_time(0.25, 100_000).expect("mixes");
        assert!(t_barbell > 20 * t_complete, "barbell {t_barbell} vs complete {t_complete}");
    }

    #[test]
    fn mixing_time_is_minimal() {
        let g = cycle_graph(9);
        let analysis = MixingAnalysis::new(&g, true);
        let t = analysis.mixing_time(0.2, 10_000).unwrap();
        assert!(analysis.delta(t) <= 0.2);
        assert!(analysis.delta(t - 1) > 0.2, "t={t} not minimal");
    }

    #[test]
    fn mixing_time_none_when_capped() {
        let g = paper_barbell();
        let analysis = MixingAnalysis::new(&g, true);
        assert_eq!(analysis.mixing_time(1e-6, 4), None);
    }

    #[test]
    fn slem_mixing_time_edge_cases() {
        assert_eq!(slem_mixing_time(0.0), 0.0);
        assert_eq!(slem_mixing_time(1.0), f64::INFINITY);
        assert!((slem_mixing_time(1.0 / std::f64::consts::E) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_bracket_true_distance_on_barbell() {
        let g = paper_barbell();
        // Paper's Def-3 conductance of the barbell.
        let phi = 1.0 / 56.0;
        let analysis = MixingAnalysis::new(&g, true);
        for t in [10u32, 100, 1000] {
            let d = analysis.delta(t);
            let ub = upper_bound_distance(phi, t, g.num_edges(), g.min_degree());
            assert!(d <= ub + 1e-9, "t={t}: Δ={d} above upper bound {ub}");
        }
    }

    #[test]
    fn lower_bound_is_conservative() {
        // (1-2Φ)^t with Φ = 1/56 stays below 1 and decays.
        let b1 = lower_bound_distance(1.0 / 56.0, 1);
        let b100 = lower_bound_distance(1.0 / 56.0, 100);
        assert!(b1 < 1.0 && b100 < b1);
        assert_eq!(lower_bound_distance(0.6, 3), 0.0, "clamped at zero");
    }

    #[test]
    fn upper_bound_at_t0_is_c() {
        let ub = upper_bound_distance(0.1, 0, 111, 10);
        assert!((ub - 22.2).abs() < 1e-12, "c = 2|E|/min_k = 22.2");
    }

    #[test]
    fn mixing_time_upper_bound_matches_coefficient_form() {
        // ln(c/ε)/−ln(1−Φ²/2) == coeff · log10(c/ε).
        let phi = 0.018;
        let (m, min_k) = (111, 10);
        let eps = 0.01;
        let direct = mixing_time_upper_bound(phi, eps, m, min_k);
        let via_coeff = mixing_bound_log10_coefficient(phi) * (22.2f64 / eps).log10();
        assert!((direct - via_coeff).abs() < 1e-6);
    }

    #[test]
    fn srw_vs_lazy_on_bipartite() {
        // Non-lazy SRW on an even cycle never mixes (period 2): Δ stays Θ(1).
        let g = cycle_graph(8);
        let plain = MixingAnalysis::new(&g, false);
        assert!(plain.delta(1001) > 0.5);
        let lazy = MixingAnalysis::new(&g, true);
        assert!(lazy.mixing_time(0.1, 10_000).is_some());
    }

    #[test]
    fn analysis_exposes_slem_consistent_with_transition() {
        let g = paper_barbell();
        let a = MixingAnalysis::new(&g, false);
        let e = jacobi_eigen(&symmetrized_transition(&g), JacobiOptions::default());
        assert!((a.slem() - e.slem()).abs() < 1e-10);
        // sanity: srw_transition row sums are 1 (used implicitly throughout)
        let p = srw_transition(&g);
        for s in p.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }
}
