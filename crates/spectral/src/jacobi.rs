//! Cyclic Jacobi eigendecomposition for symmetric matrices.
//!
//! Robust, dependency-free, and easily accurate enough for the paper's
//! spectral experiments (Fig 10 uses graphs of 50–100 nodes). Jacobi
//! iterates plane rotations that zero one off-diagonal pair at a time;
//! convergence is quadratic once the matrix is nearly diagonal.

use crate::dense::DenseMatrix;

/// Result of a symmetric eigendecomposition.
#[derive(Clone, Debug)]
pub struct EigenDecomposition {
    /// Eigenvalues sorted in descending order.
    pub values: Vec<f64>,
    /// `vectors[k]` is the unit eigenvector for `values[k]`.
    pub vectors: Vec<Vec<f64>>,
}

impl EigenDecomposition {
    /// Largest eigenvalue.
    ///
    /// # Panics
    /// Panics for the 0×0 matrix.
    pub fn lambda_max(&self) -> f64 {
        *self.values.first().expect("empty spectrum")
    }

    /// Smallest eigenvalue.
    ///
    /// # Panics
    /// Panics for the 0×0 matrix.
    pub fn lambda_min(&self) -> f64 {
        *self.values.last().expect("empty spectrum")
    }

    /// Second largest eigenvalue modulus: `max(|λ_2|, |λ_n|)` — the SLEM of
    /// a stochastic matrix whose Perron eigenvalue is `values[0] = 1`.
    ///
    /// # Panics
    /// Panics for matrices smaller than 2×2.
    pub fn slem(&self) -> f64 {
        assert!(self.values.len() >= 2, "SLEM needs at least a 2x2 matrix");
        self.values[1].abs().max(self.values[self.values.len() - 1].abs())
    }
}

/// Eigendecomposition options.
#[derive(Clone, Copy, Debug)]
pub struct JacobiOptions {
    /// Stop once the off-diagonal Frobenius norm falls below this.
    pub tolerance: f64,
    /// Hard cap on full sweeps.
    pub max_sweeps: usize,
}

impl Default for JacobiOptions {
    fn default() -> Self {
        JacobiOptions { tolerance: 1e-12, max_sweeps: 100 }
    }
}

/// Computes all eigenvalues and eigenvectors of a symmetric matrix.
///
/// # Panics
/// Panics if the matrix is not square or not symmetric (tolerance `1e-9`),
/// or if `max_sweeps` is exhausted before convergence (which for real
/// symmetric input indicates a logic error, not an input problem).
pub fn jacobi_eigen(matrix: &DenseMatrix, opts: JacobiOptions) -> EigenDecomposition {
    assert_eq!(matrix.rows(), matrix.cols(), "Jacobi needs a square matrix");
    assert!(matrix.is_symmetric(1e-9), "Jacobi needs a symmetric matrix");
    let n = matrix.rows();
    let mut a = matrix.clone();
    let mut v = DenseMatrix::identity(n);

    if n > 1 {
        let mut sweeps = 0;
        while a.off_diagonal_norm() > opts.tolerance {
            assert!(
                sweeps < opts.max_sweeps,
                "Jacobi failed to converge in {} sweeps (off-diag {:.3e})",
                opts.max_sweeps,
                a.off_diagonal_norm()
            );
            for p in 0..n - 1 {
                for q in (p + 1)..n {
                    rotate(&mut a, &mut v, p, q);
                }
            }
            sweeps += 1;
        }
    }

    // Extract and sort.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| a.get(j, j).partial_cmp(&a.get(i, i)).expect("eigenvalue NaN"));
    let values: Vec<f64> = order.iter().map(|&i| a.get(i, i)).collect();
    let vectors: Vec<Vec<f64>> =
        order.iter().map(|&k| (0..n).map(|i| v.get(i, k)).collect()).collect();
    EigenDecomposition { values, vectors }
}

/// One Jacobi rotation zeroing `a[p][q]`.
fn rotate(a: &mut DenseMatrix, v: &mut DenseMatrix, p: usize, q: usize) {
    let apq = a.get(p, q);
    if apq.abs() < f64::MIN_POSITIVE {
        return;
    }
    let app = a.get(p, p);
    let aqq = a.get(q, q);
    let theta = (aqq - app) / (2.0 * apq);
    // Numerically stable tangent of the rotation angle.
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        1.0 / (theta - (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;

    let n = a.rows();
    for i in 0..n {
        let aip = a.get(i, p);
        let aiq = a.get(i, q);
        a.set(i, p, c * aip - s * aiq);
        a.set(i, q, s * aip + c * aiq);
    }
    for j in 0..n {
        let apj = a.get(p, j);
        let aqj = a.get(q, j);
        a.set(p, j, c * apj - s * aqj);
        a.set(q, j, s * apj + c * aqj);
    }
    for i in 0..n {
        let vip = v.get(i, p);
        let viq = v.get(i, q);
        v.set(i, p, c * vip - s * viq);
        v.set(i, q, s * vip + c * viq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decompose(rows: &[Vec<f64>]) -> EigenDecomposition {
        jacobi_eigen(&DenseMatrix::from_rows(rows), JacobiOptions::default())
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_its_diagonal() {
        let e = decompose(&[vec![3.0, 0.0, 0.0], vec![0.0, -1.0, 0.0], vec![0.0, 0.0, 2.0]]);
        assert_eq!(e.values, vec![3.0, 2.0, -1.0]);
        assert_eq!(e.lambda_max(), 3.0);
        assert_eq!(e.lambda_min(), -1.0);
    }

    #[test]
    fn two_by_two_known_spectrum() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let e = decompose(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let m = DenseMatrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, -1.0],
            vec![0.5, -1.0, 2.0],
        ]);
        let e = jacobi_eigen(&m, JacobiOptions::default());
        for (lambda, vec) in e.values.iter().zip(&e.vectors) {
            let mv = m.matvec(vec);
            for (a, b) in mv.iter().zip(vec) {
                assert!((a - lambda * b).abs() < 1e-8, "Av != λv");
            }
            let norm: f64 = vec.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-10, "eigenvector not unit");
        }
    }

    #[test]
    fn eigenvectors_are_orthogonal() {
        let m = DenseMatrix::from_rows(&[
            vec![1.0, 0.3, 0.0, 0.2],
            vec![0.3, 2.0, 0.5, 0.0],
            vec![0.0, 0.5, 3.0, 0.7],
            vec![0.2, 0.0, 0.7, 4.0],
        ]);
        let e = jacobi_eigen(&m, JacobiOptions::default());
        for i in 0..4 {
            for j in (i + 1)..4 {
                let dot: f64 = e.vectors[i].iter().zip(&e.vectors[j]).map(|(a, b)| a * b).sum();
                assert!(dot.abs() < 1e-9, "vectors {i},{j} not orthogonal: {dot}");
            }
        }
    }

    #[test]
    fn trace_and_eigenvalue_sum_agree() {
        let m = DenseMatrix::from_rows(&[
            vec![5.0, 2.0, 1.0],
            vec![2.0, -3.0, 0.5],
            vec![1.0, 0.5, 1.5],
        ]);
        let e = jacobi_eigen(&m, JacobiOptions::default());
        let trace = 5.0 - 3.0 + 1.5;
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn slem_picks_largest_modulus_after_perron() {
        // Stochastic-like spectrum {1, 0.3, -0.8}: SLEM is 0.8.
        let e = decompose(&[vec![1.0, 0.0, 0.0], vec![0.0, 0.3, 0.0], vec![0.0, 0.0, -0.8]]);
        assert!((e.slem() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn one_by_one_matrix() {
        let e = decompose(&[vec![7.0]]);
        assert_eq!(e.values, vec![7.0]);
        assert_eq!(e.vectors, vec![vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn rejects_asymmetric_input() {
        let _ = decompose(&[vec![1.0, 2.0], vec![0.0, 1.0]]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_rectangular_input() {
        let m = DenseMatrix::zeros(2, 3);
        let _ = jacobi_eigen(&m, JacobiOptions::default());
    }

    #[test]
    fn larger_random_symmetric_matrix_reconstructs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let n = 30;
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let x: f64 = rng.gen_range(-1.0..1.0);
                m.set(i, j, x);
                m.set(j, i, x);
            }
        }
        let e = jacobi_eigen(&m, JacobiOptions::default());
        // Reconstruct A = Q Λ Qᵀ and compare.
        let mut recon = DenseMatrix::zeros(n, n);
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let v = recon.get(i, j) + e.values[k] * e.vectors[k][i] * e.vectors[k][j];
                    recon.set(i, j, v);
                }
            }
        }
        assert!(m.max_abs_diff(&recon) < 1e-8);
    }
}
