//! Property tests for the spectral substrate: eigensolver correctness,
//! conductance consistency, and the mixing-time bound relationships.

use mto_graph::algo::largest_component;
use mto_graph::generators::gnp_graph;
use mto_spectral::conductance::{
    cut_metrics, exact_conductance, mask_to_membership, sweep_conductance,
};
use mto_spectral::jacobi::{jacobi_eigen, JacobiOptions};
use mto_spectral::mixing::{mixing_bound_log10_coefficient, upper_bound_distance, MixingAnalysis};
use mto_spectral::power::{slem_power_iteration, PowerIterationOptions};
use mto_spectral::transition::{stationary_distribution, symmetrized_transition};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn connected_graph(seed: u64, n: usize, p: f64) -> Option<mto_graph::Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gnp_graph(n, p, &mut rng);
    let (lcc, _) = largest_component(&g);
    (lcc.num_nodes() >= 3 && lcc.min_degree() >= 1).then_some(lcc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The SRW spectrum lives in [-1, 1] with top eigenvalue exactly 1,
    /// and the known stationary distribution is invariant.
    #[test]
    fn srw_spectrum_is_bounded(seed in 0u64..2000, n in 4usize..18) {
        let Some(g) = connected_graph(seed, n, 0.4) else { return Ok(()) };
        let e = jacobi_eigen(&symmetrized_transition(&g), JacobiOptions::default());
        prop_assert!((e.lambda_max() - 1.0).abs() < 1e-8, "λ₁ = {}", e.lambda_max());
        prop_assert!(e.lambda_min() >= -1.0 - 1e-8);
        // Connected graph: λ₂ < 1 strictly.
        prop_assert!(e.values[1] < 1.0 - 1e-10);
        // Stationary invariance.
        let p = mto_spectral::srw_transition(&g);
        let pi = stationary_distribution(&g);
        let next = p.transpose().matvec(&pi);
        for (a, b) in pi.iter().zip(&next) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Deflated power iteration agrees with the dense Jacobi SLEM.
    #[test]
    fn power_iteration_matches_jacobi(seed in 0u64..2000, n in 4usize..20) {
        let Some(g) = connected_graph(seed, n, 0.35) else { return Ok(()) };
        let exact = jacobi_eigen(&symmetrized_transition(&g), JacobiOptions::default()).slem();
        let approx = slem_power_iteration(&g, PowerIterationOptions::default());
        prop_assert!(
            (approx.slem - exact).abs() < 1e-5,
            "power {} vs jacobi {exact}",
            approx.slem
        );
    }

    /// The exact conductance is attained by its reported cut, no cut does
    /// better, and the spectral sweep upper-bounds it.
    #[test]
    fn conductance_certificates(seed in 0u64..2000, n in 4usize..12) {
        let Some(g) = connected_graph(seed, n, 0.45) else { return Ok(()) };
        let result = exact_conductance(&g);
        // The reported best cut really evaluates to phi.
        let membership = mask_to_membership(result.best_cut, g.num_nodes());
        let phi_of_best = cut_metrics(&g, &membership).phi().unwrap();
        prop_assert!((phi_of_best - result.phi).abs() < 1e-12);
        // A handful of random cuts can't beat it.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        use rand::Rng;
        for _ in 0..50 {
            let mask: u64 = rng.gen_range(1..(1u64 << g.num_nodes()) - 1);
            let m = cut_metrics(&g, &mask_to_membership(mask, g.num_nodes()));
            if let Some(phi) = m.phi() {
                prop_assert!(phi >= result.phi - 1e-12, "cut {mask:b} beats the optimum");
            }
        }
        // Sweep is an upper bound.
        let (sweep, _) = sweep_conductance(&g);
        prop_assert!(sweep >= result.phi - 1e-9);
    }

    /// Eq (4): the conductance envelope really upper-bounds the exact
    /// relative pointwise distance of the lazy chain.
    #[test]
    fn upper_envelope_dominates_delta(seed in 0u64..1000, n in 4usize..14) {
        let Some(g) = connected_graph(seed, n, 0.5) else { return Ok(()) };
        let phi = exact_conductance(&g).phi;
        if phi <= 0.0 {
            return Ok(());
        }
        let analysis = MixingAnalysis::new(&g, true);
        for t in [1u32, 4, 16, 64] {
            let delta = analysis.delta(t);
            let bound = upper_bound_distance(phi, t, g.num_edges(), g.min_degree());
            prop_assert!(
                delta <= bound + 1e-9,
                "t={t}: Δ={delta} exceeds envelope {bound} (Φ={phi})"
            );
        }
    }

    /// The mixing-bound coefficient is monotone decreasing in Φ — the
    /// paper's whole premise (higher conductance ⇒ faster walks).
    #[test]
    fn bound_coefficient_monotone(phi_lo in 0.001f64..0.5, gap in 0.001f64..0.4) {
        let phi_hi = (phi_lo + gap).min(0.99);
        prop_assert!(
            mixing_bound_log10_coefficient(phi_hi)
                < mixing_bound_log10_coefficient(phi_lo)
        );
    }

    /// Δ(t) from the eigendecomposition matches brute-force matrix powers.
    #[test]
    fn spectral_delta_matches_matrix_power(seed in 0u64..500, n in 3usize..10) {
        let Some(g) = connected_graph(seed, n, 0.5) else { return Ok(()) };
        let analysis = MixingAnalysis::new(&g, true);
        let p = mto_spectral::lazy_transition(&g);
        let pi = stationary_distribution(&g);
        let mut pt = p.clone();
        for t in 1..=6u32 {
            let direct = mto_spectral::mixing::relative_pointwise_distance(&pt, &pi);
            let spectral = analysis.delta(t);
            prop_assert!(
                (direct - spectral).abs() < 1e-7,
                "t={t}: direct {direct} vs spectral {spectral}"
            );
            pt = pt.matmul(&p);
        }
    }
}
