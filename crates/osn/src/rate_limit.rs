//! Token-bucket rate limiting over a virtual clock.
//!
//! Real providers cap request rates (the paper quotes Facebook's 600
//! queries per 600 seconds and Twitter's 350 per hour). The simulation
//! enforces the same shape of limit against a *virtual* clock so
//! experiments can report "this sampling run would have taken N hours
//! against the live API" without actually sleeping.

use std::sync::atomic::{AtomicU64, Ordering};

use mto_graph::NodeId;
use parking_lot::Mutex;

use crate::clock::VirtualClock;
use crate::error::{OsnError, Result};
use crate::interface::{QueryResponse, SocialNetworkInterface};

/// A published rate-limit policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateLimitPolicy {
    /// Maximum requests per window (bucket capacity).
    pub burst: u64,
    /// Sustained refill rate in requests per virtual second.
    pub refill_per_sec: f64,
}

impl RateLimitPolicy {
    /// Facebook's published limit circa the paper: 600 requests / 600 s.
    pub fn facebook() -> Self {
        RateLimitPolicy { burst: 600, refill_per_sec: 1.0 }
    }

    /// Twitter's published limit circa the paper: 350 requests / hour.
    pub fn twitter() -> Self {
        RateLimitPolicy { burst: 350, refill_per_sec: 350.0 / 3600.0 }
    }

    /// A generous developer quota similar to what the paper found on the
    /// Google Plus API.
    pub fn google_plus() -> Self {
        RateLimitPolicy { burst: 10_000, refill_per_sec: 10_000.0 / 86_400.0 }
    }
}

/// Token bucket against a virtual clock (seconds as `f64`).
#[derive(Clone, Debug)]
pub struct TokenBucket {
    policy: RateLimitPolicy,
    tokens: f64,
    /// Virtual time of the last refill.
    last_refill: f64,
}

impl TokenBucket {
    /// Full bucket at virtual time zero.
    pub fn new(policy: RateLimitPolicy) -> Self {
        TokenBucket { policy, tokens: policy.burst as f64, last_refill: 0.0 }
    }

    fn refill(&mut self, now: f64) {
        if now > self.last_refill {
            self.tokens = (self.tokens + (now - self.last_refill) * self.policy.refill_per_sec)
                .min(self.policy.burst as f64);
            self.last_refill = now;
        }
    }

    /// Attempts to take one token at virtual time `now`. On failure returns
    /// the virtual seconds to wait for the next token.
    pub fn try_acquire(&mut self, now: f64) -> std::result::Result<(), f64> {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            Err((1.0 - self.tokens) / self.policy.refill_per_sec)
        }
    }

    /// Tokens currently available at `now`.
    pub fn available(&mut self, now: f64) -> f64 {
        self.refill(now);
        self.tokens
    }
}

/// Interface wrapper enforcing a rate limit and advancing a virtual clock.
///
/// Policy: when the bucket is empty the wrapper *waits virtually* —
/// advancing the clock to the next token instead of failing — and records
/// the stall. Set `fail_when_limited` to surface [`OsnError::RateLimited`]
/// instead.
pub struct RateLimitedInterface<I> {
    inner: I,
    bucket: Mutex<TokenBucket>,
    /// The shared virtual clock this wrapper advances (see
    /// [`VirtualClock`] — one timeline for quota *and* latency).
    clock: VirtualClock,
    /// Virtual seconds each request costs even when tokens are available
    /// (network latency).
    request_latency: f64,
    /// Fail instead of stalling when the bucket is empty.
    pub fail_when_limited: bool,
    stalls: AtomicU64,
}

impl<I: SocialNetworkInterface> RateLimitedInterface<I> {
    /// Wraps an interface with a policy; default per-request virtual
    /// latency of 50 ms, on a fresh private clock.
    pub fn new(inner: I, policy: RateLimitPolicy) -> Self {
        Self::with_clock(inner, policy, VirtualClock::new())
    }

    /// Wraps an interface with a policy on an externally shared
    /// [`VirtualClock`], so rate-limit stalls and event-engine latency
    /// (the `mto-net` pipeline) advance one common timeline.
    pub fn with_clock(inner: I, policy: RateLimitPolicy, clock: VirtualClock) -> Self {
        RateLimitedInterface {
            inner,
            bucket: Mutex::new(TokenBucket::new(policy)),
            clock,
            request_latency: 0.05,
            fail_when_limited: false,
            stalls: AtomicU64::new(0),
        }
    }

    /// Current virtual time in seconds.
    pub fn virtual_now(&self) -> f64 {
        self.clock.now()
    }

    /// The clock this wrapper advances (cloneable shared handle).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Number of requests that had to stall for tokens.
    pub fn stalls(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// Access to the wrapped interface.
    pub fn inner(&self) -> &I {
        &self.inner
    }
}

impl<I: SocialNetworkInterface> SocialNetworkInterface for RateLimitedInterface<I> {
    fn query(&self, v: NodeId) -> Result<QueryResponse> {
        let now = self.clock.advance(self.request_latency);
        let mut bucket = self.bucket.lock();
        match bucket.try_acquire(now) {
            Ok(()) => {}
            Err(wait) => {
                if self.fail_when_limited {
                    return Err(OsnError::RateLimited { retry_after_secs: wait.ceil() as u64 });
                }
                self.stalls.fetch_add(1, Ordering::Relaxed);
                let mut later = self.clock.advance(wait);
                // Rounding in the refill can leave the bucket a hair
                // short at the computed instant (especially when another
                // clock sharer moved time between our reads); nudge
                // forward until the token really lands.
                while let Err(more) = bucket.try_acquire(later) {
                    later = self.clock.advance(more.max(1e-6));
                }
            }
        }
        drop(bucket);
        self.inner.query(v)
    }

    fn num_users_hint(&self) -> Option<usize> {
        self.inner.num_users_hint()
    }

    fn requests_served(&self) -> u64 {
        self.inner.requests_served()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::OsnService;
    use mto_graph::generators::paper_barbell;

    #[test]
    fn bucket_burst_then_empty() {
        let mut b = TokenBucket::new(RateLimitPolicy { burst: 3, refill_per_sec: 1.0 });
        assert!(b.try_acquire(0.0).is_ok());
        assert!(b.try_acquire(0.0).is_ok());
        assert!(b.try_acquire(0.0).is_ok());
        let wait = b.try_acquire(0.0).unwrap_err();
        assert!((wait - 1.0).abs() < 1e-9, "one token a second away, got {wait}");
    }

    #[test]
    fn bucket_refills_with_time() {
        let mut b = TokenBucket::new(RateLimitPolicy { burst: 2, refill_per_sec: 0.5 });
        b.try_acquire(0.0).unwrap();
        b.try_acquire(0.0).unwrap();
        assert!(b.try_acquire(1.0).is_err(), "only half a token at t=1");
        assert!(b.try_acquire(2.0).is_ok(), "full token at t=2");
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut b = TokenBucket::new(RateLimitPolicy { burst: 5, refill_per_sec: 100.0 });
        assert!((b.available(1000.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn policies_have_expected_magnitudes() {
        let fb = RateLimitPolicy::facebook();
        assert_eq!(fb.burst, 600);
        assert!((fb.refill_per_sec - 1.0).abs() < 1e-12);
        let tw = RateLimitPolicy::twitter();
        assert!(tw.refill_per_sec < fb.refill_per_sec);
    }

    #[test]
    fn limited_interface_stalls_and_advances_clock() {
        let svc = OsnService::with_defaults(&paper_barbell());
        let limited =
            RateLimitedInterface::new(svc, RateLimitPolicy { burst: 5, refill_per_sec: 1.0 });
        for i in 0..10u32 {
            limited.query(NodeId(i % 22)).unwrap();
        }
        assert!(limited.stalls() >= 4, "got {} stalls", limited.stalls());
        // 10 requests with burst 5 at 1 rps: at least ~4 seconds of stalling.
        assert!(limited.virtual_now() >= 4.0, "virtual time {}", limited.virtual_now());
    }

    #[test]
    fn limited_interface_can_fail_fast() {
        let svc = OsnService::with_defaults(&paper_barbell());
        let mut limited =
            RateLimitedInterface::new(svc, RateLimitPolicy { burst: 1, refill_per_sec: 0.001 });
        limited.fail_when_limited = true;
        limited.query(NodeId(0)).unwrap();
        match limited.query(NodeId(1)) {
            Err(OsnError::RateLimited { retry_after_secs }) => {
                assert!(retry_after_secs > 100, "slow refill means a long wait");
            }
            other => panic!("expected RateLimited, got {other:?}"),
        }
    }

    #[test]
    fn shared_clock_unifies_external_advances_with_refill() {
        // A clock advanced by some *other* component (e.g. the mto-net
        // event engine) must refill this wrapper's bucket: one timeline.
        let svc = OsnService::with_defaults(&paper_barbell());
        let clock = VirtualClock::new();
        let limited = RateLimitedInterface::with_clock(
            svc,
            RateLimitPolicy { burst: 1, refill_per_sec: 1.0 },
            clock.clone(),
        );
        limited.query(NodeId(0)).unwrap(); // bucket now empty
        clock.advance(10.0); // latency elapsing elsewhere refills it
        limited.query(NodeId(1)).unwrap();
        assert_eq!(limited.stalls(), 0, "externally elapsed time covered the refill");
        assert!(limited.virtual_now() >= 10.0);
    }

    #[test]
    fn latency_advances_clock_even_without_stalls() {
        let svc = OsnService::with_defaults(&paper_barbell());
        let limited = RateLimitedInterface::new(svc, RateLimitPolicy::facebook());
        for i in 0..20u32 {
            limited.query(NodeId(i % 22)).unwrap();
        }
        assert!((limited.virtual_now() - 1.0).abs() < 0.01, "20 * 50ms = 1s");
        assert_eq!(limited.stalls(), 0);
    }
}
