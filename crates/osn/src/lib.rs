//! # mto-osn — the simulated restrictive online-social-network interface
//!
//! The paper's access model (Section II-A): a third party may only issue
//! `q(v)`, which returns one user's profile and neighbor list, under a
//! provider-imposed rate limit, with no global topology endpoint. This
//! crate builds that world:
//!
//! * [`interface::SocialNetworkInterface`] — the `q(v)` trait;
//! * [`service::OsnService`] — an in-memory network (topology + synthetic
//!   profiles) behind the interface, with optional transient-failure
//!   injection; the stand-in for the retired Google Plus API and for the
//!   paper's simulated local-dataset interface;
//! * [`cache::CachedClient`] — the client-side cache implementing the
//!   paper's cost model (duplicate queries are free) and the Section III-D
//!   degree history that powers Theorem 5;
//! * [`rate_limit`] — token-bucket quotas over a virtual clock, with the
//!   Facebook/Twitter policies the paper quotes;
//! * [`clock`] — the one shared [`clock::VirtualClock`] that rate limiting
//!   and the `mto-net` discrete-event engine both advance;
//! * [`crawler`] — budgeted BFS/DFS baselines.
//!
//! ## Example
//!
//! ```
//! use mto_graph::generators::paper_barbell;
//! use mto_osn::cache::CachedClient;
//! use mto_osn::service::OsnService;
//! use mto_graph::NodeId;
//!
//! let service = OsnService::with_defaults(&paper_barbell());
//! let mut client = CachedClient::new(service);
//! let response = client.query(NodeId(0)).unwrap();
//! assert_eq!(response.degree(), 11);
//! client.query(NodeId(0)).unwrap(); // cache hit
//! assert_eq!(client.unique_queries(), 1);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod clock;
pub mod crawler;
pub mod error;
pub mod interface;
pub mod profile;
pub mod rate_limit;
pub mod service;

pub use cache::{CacheSnapshot, CachedClient, NeighborArena};
pub use client::{QueryClient, SharedClient};
pub use clock::VirtualClock;
pub use error::{OsnError, Result};
pub use interface::{QueryResponse, SocialNetworkInterface};
pub use profile::{ProfileGenerator, UserProfile};
pub use rate_limit::{RateLimitPolicy, RateLimitedInterface, TokenBucket};
pub use service::{OsnService, OsnServiceConfig};
