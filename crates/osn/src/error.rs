//! Error type for the simulated online-social-network interface.

use std::fmt;

use mto_graph::NodeId;

/// Failures a third-party client can observe when querying the interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsnError {
    /// The queried user id does not exist.
    UnknownUser(NodeId),
    /// The per-window request quota is exhausted; retry after the given
    /// number of virtual seconds.
    RateLimited {
        /// Virtual seconds until the next token becomes available.
        retry_after_secs: u64,
    },
    /// A transient server-side failure (injected for resilience testing);
    /// the request did not consume quota and may be retried.
    Transient {
        /// The user whose query failed.
        user: NodeId,
        /// How many failures this query has seen so far.
        attempt: u32,
    },
}

impl fmt::Display for OsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsnError::UnknownUser(v) => write!(f, "unknown user id {v}"),
            OsnError::RateLimited { retry_after_secs } => {
                write!(f, "rate limited; retry after {retry_after_secs}s")
            }
            OsnError::Transient { user, attempt } => {
                write!(f, "transient failure querying {user} (attempt {attempt})")
            }
        }
    }
}

impl std::error::Error for OsnError {}

/// Result alias for interface operations.
pub type Result<T> = std::result::Result<T, OsnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(OsnError::UnknownUser(NodeId(3)).to_string().contains("unknown user"));
        assert!(OsnError::RateLimited { retry_after_secs: 9 }.to_string().contains("9s"));
        assert!(OsnError::Transient { user: NodeId(1), attempt: 2 }
            .to_string()
            .contains("attempt 2"));
    }
}
