//! Budgeted BFS/DFS crawlers.
//!
//! The related work the paper positions against (\[10\], \[15\]) compares
//! random-walk sampling to breadth/depth-first crawling. These crawlers
//! give the examples and ablation benches the same baselines: crawl until
//! the query budget runs out, then estimate from whatever was collected
//! (which is exactly why crawling is biased — the frontier is a
//! neighborhood snowball, not a stationary sample).

use std::collections::VecDeque;

use mto_graph::NodeId;

use crate::cache::CachedClient;
use crate::error::Result;
use crate::interface::SocialNetworkInterface;

/// Crawl order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrawlStrategy {
    /// First-in-first-out frontier (breadth-first).
    Bfs,
    /// Last-in-first-out frontier (depth-first).
    Dfs,
}

/// Result of a budgeted crawl.
#[derive(Clone, Debug)]
pub struct CrawlResult {
    /// Users actually queried, in visit order.
    pub visited: Vec<NodeId>,
    /// Users discovered (seen in some neighborhood) but not yet queried.
    pub frontier: Vec<NodeId>,
    /// Unique queries spent.
    pub queries: u64,
}

impl CrawlResult {
    /// Average degree over the *visited* users — the classic biased
    /// snowball estimate.
    pub fn average_visited_degree<I: SocialNetworkInterface>(
        &self,
        client: &CachedClient<I>,
    ) -> f64 {
        if self.visited.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .visited
            .iter()
            .map(|&v| client.known_degree(v).expect("visited nodes were queried"))
            .sum();
        total as f64 / self.visited.len() as f64
    }
}

/// Crawls from `start` until `query_budget` unique queries are spent or the
/// component is exhausted.
pub fn crawl<I: SocialNetworkInterface>(
    client: &mut CachedClient<I>,
    start: NodeId,
    query_budget: u64,
    strategy: CrawlStrategy,
) -> Result<CrawlResult> {
    let mut visited = Vec::new();
    let mut discovered = std::collections::HashSet::new();
    let mut frontier: VecDeque<NodeId> = VecDeque::new();
    frontier.push_back(start);
    discovered.insert(start);
    let start_cost = client.unique_queries();

    while let Some(v) = match strategy {
        CrawlStrategy::Bfs => frontier.pop_front(),
        CrawlStrategy::Dfs => frontier.pop_back(),
    } {
        if client.unique_queries() - start_cost >= query_budget {
            frontier.push_front(v);
            break;
        }
        let response = client.query(v)?;
        let neighbors = response.neighbors.clone();
        visited.push(v);
        for u in neighbors {
            if discovered.insert(u) {
                frontier.push_back(u);
            }
        }
    }

    Ok(CrawlResult {
        visited,
        frontier: frontier.into_iter().collect(),
        queries: client.unique_queries() - start_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::OsnService;
    use mto_graph::generators::{paper_barbell, path_graph};

    fn client_for(g: &mto_graph::Graph) -> CachedClient<OsnService> {
        CachedClient::new(OsnService::with_defaults(g))
    }

    #[test]
    fn bfs_crawl_visits_in_distance_order() {
        let g = path_graph(6);
        let mut c = client_for(&g);
        let r = crawl(&mut c, NodeId(0), 100, CrawlStrategy::Bfs).unwrap();
        assert_eq!(r.visited, (0..6).map(NodeId).collect::<Vec<_>>());
        assert_eq!(r.queries, 6);
        assert!(r.frontier.is_empty());
    }

    #[test]
    fn dfs_crawl_goes_deep_first() {
        let g = path_graph(6);
        let mut c = client_for(&g);
        let r = crawl(&mut c, NodeId(0), 100, CrawlStrategy::Dfs).unwrap();
        // On a path both strategies coincide after the first step; check a
        // branching graph instead for ordering.
        assert_eq!(r.visited.len(), 6);

        let star = mto_graph::generators::star_graph(5);
        let mut c2 = client_for(&star);
        let r2 = crawl(&mut c2, NodeId(0), 2, CrawlStrategy::Dfs).unwrap();
        // DFS after hub visits the most recently discovered leaf (highest id).
        assert_eq!(r2.visited, vec![NodeId(0), NodeId(4)]);
    }

    #[test]
    fn budget_is_respected() {
        let g = paper_barbell();
        let mut c = client_for(&g);
        let r = crawl(&mut c, NodeId(0), 5, CrawlStrategy::Bfs).unwrap();
        assert_eq!(r.queries, 5);
        assert_eq!(r.visited.len(), 5);
        assert!(!r.frontier.is_empty(), "crawl was cut short, frontier remains");
    }

    #[test]
    fn crawl_stays_in_component() {
        let mut g = path_graph(3);
        let isolated = g.add_node();
        let mut c = client_for(&g);
        let r = crawl(&mut c, NodeId(0), 100, CrawlStrategy::Bfs).unwrap();
        assert_eq!(r.visited.len(), 3);
        assert!(!r.visited.contains(&isolated));
    }

    #[test]
    fn snowball_estimate_is_biased_toward_hubs() {
        // On the barbell, a 6-query BFS from the bridge visits mostly
        // clique nodes with degree 10-11 — overestimating nothing here
        // (regular-ish), but the estimate must equal the visited mean.
        let g = paper_barbell();
        let mut c = client_for(&g);
        let r = crawl(&mut c, NodeId(0), 6, CrawlStrategy::Bfs).unwrap();
        let est = r.average_visited_degree(&c);
        assert!((10.0..=11.0).contains(&est), "got {est}");
    }

    #[test]
    fn crawl_uses_cache_for_repeat_visits() {
        let g = paper_barbell();
        let mut c = client_for(&g);
        let first = crawl(&mut c, NodeId(0), 10, CrawlStrategy::Bfs).unwrap();
        assert_eq!(first.queries, 10);
        let before = c.unique_queries();
        // Re-crawling revisits the 10 cached nodes for free, then pushes on
        // and spends its whole budget on fresh nodes.
        let second = crawl(&mut c, NodeId(0), 10, CrawlStrategy::Bfs).unwrap();
        assert_eq!(second.queries, 10, "budget counts only unique queries");
        assert_eq!(c.unique_queries(), before + 10);
        assert!(second.visited.len() >= 20, "cached revisits are free");
    }
}
