//! Client abstraction the samplers walk through.
//!
//! Walkers need: issue `q(v)` with caching, look up remembered degrees
//! (Theorem 5), and report the unique-query cost. [`QueryClient`] captures
//! exactly that, with two implementations:
//!
//! * [`CachedClient`] — exclusive ownership, zero locking (single walker);
//! * [`SharedClient`] — an `Arc<Mutex<CachedClient>>` so parallel walkers
//!   share one cache and one query budget, the deployment the paper
//!   mentions for "many parallel random walks".
//!
//! The hot-path methods — [`QueryClient::fetch_degree`],
//! [`QueryClient::fetch_neighbors_into`], and
//! [`QueryClient::cached_neighbors_into`] — answer without allocating:
//! steady-state walking over a warm cache moves node ids straight from
//! the client's flat arena into caller-owned scratch buffers. The owned
//! [`QueryClient::fetch`] remains for cold paths and compatibility.

use std::sync::Arc;

use mto_graph::NodeId;
use parking_lot::Mutex;

use crate::cache::CachedClient;
use crate::error::Result;
use crate::interface::{QueryResponse, SocialNetworkInterface};

/// The sampler-facing client API.
pub trait QueryClient {
    /// Issues `q(v)` (cached), returning an owned response.
    fn fetch(&mut self, v: NodeId) -> Result<QueryResponse>;

    /// Issues `q(v)` (cached), returning only the degree. Bills exactly
    /// like [`QueryClient::fetch`] — one lookup, one unique query when
    /// cold — but never allocates.
    fn fetch_degree(&mut self, v: NodeId) -> Result<usize> {
        Ok(self.fetch(v)?.degree())
    }

    /// Issues `q(v)` (cached) and copies the neighbor list into `out`
    /// (cleared first). Bills exactly like [`QueryClient::fetch`]; with a
    /// warm cache and a pre-grown `out` this performs no allocation.
    fn fetch_neighbors_into(&mut self, v: NodeId, out: &mut Vec<NodeId>) -> Result<()> {
        let r = self.fetch(v)?;
        out.clear();
        out.extend_from_slice(&r.neighbors);
        Ok(())
    }

    /// Degree of `v` if it is already known locally (free).
    fn known_degree(&self, v: NodeId) -> Option<usize>;

    /// Unique queries spent so far — the paper's cost measure.
    fn unique_queries(&self) -> u64;

    /// Provider-published total user count, when available.
    fn num_users_hint(&self) -> Option<usize>;

    /// Neighbor list of `v` **if its full response is cached locally**
    /// (free — no request is issued). `None` when only a degree hint or
    /// nothing is known. This is the read the walk-not-wait prefetcher
    /// uses to enumerate speculative targets without spending queries.
    fn cached_neighbors(&self, v: NodeId) -> Option<Vec<NodeId>> {
        let _ = v;
        None
    }

    /// Allocation-free variant of [`QueryClient::cached_neighbors`]:
    /// copies the cached list into `out` (cleared first) and reports
    /// whether `v` was cached. `out` is left empty when it was not.
    fn cached_neighbors_into(&self, v: NodeId, out: &mut Vec<NodeId>) -> bool {
        out.clear();
        match self.cached_neighbors(v) {
            Some(neighbors) => {
                out.extend_from_slice(&neighbors);
                true
            }
            None => false,
        }
    }

    /// Whether a full response for `v` is cached locally (free).
    fn is_cached(&self, v: NodeId) -> bool {
        self.cached_neighbors(v).is_some()
    }

    /// Borrowed view of `v`'s cached neighbor list when the client can
    /// expose one without copying or locking. `None` means "use
    /// [`QueryClient::cached_neighbors_into`] instead", not "uncached" —
    /// a lock-guarded client cannot hand out borrows and always declines.
    fn known_neighbors(&self, v: NodeId) -> Option<&[NodeId]> {
        let _ = v;
        None
    }
}

impl<I: SocialNetworkInterface> QueryClient for CachedClient<I> {
    fn fetch(&mut self, v: NodeId) -> Result<QueryResponse> {
        self.query(v)
    }

    fn fetch_degree(&mut self, v: NodeId) -> Result<usize> {
        self.query_degree(v)
    }

    fn fetch_neighbors_into(&mut self, v: NodeId, out: &mut Vec<NodeId>) -> Result<()> {
        let neighbors = self.query_neighbors(v)?;
        out.clear();
        out.extend_from_slice(neighbors);
        Ok(())
    }

    fn known_degree(&self, v: NodeId) -> Option<usize> {
        CachedClient::known_degree(self, v)
    }

    fn unique_queries(&self) -> u64 {
        CachedClient::unique_queries(self)
    }

    fn num_users_hint(&self) -> Option<usize> {
        CachedClient::num_users_hint(self)
    }

    fn cached_neighbors(&self, v: NodeId) -> Option<Vec<NodeId>> {
        self.neighbors_of(v).map(<[NodeId]>::to_vec)
    }

    fn cached_neighbors_into(&self, v: NodeId, out: &mut Vec<NodeId>) -> bool {
        out.clear();
        match self.neighbors_of(v) {
            Some(neighbors) => {
                out.extend_from_slice(neighbors);
                true
            }
            None => false,
        }
    }

    fn is_cached(&self, v: NodeId) -> bool {
        CachedClient::is_cached(self, v)
    }

    fn known_neighbors(&self, v: NodeId) -> Option<&[NodeId]> {
        self.neighbors_of(v)
    }
}

/// Thread-safe shared client: many walkers, one cache, one budget.
pub struct SharedClient<I> {
    inner: Arc<Mutex<CachedClient<I>>>,
}

impl<I> Clone for SharedClient<I> {
    fn clone(&self) -> Self {
        SharedClient { inner: self.inner.clone() }
    }
}

impl<I: SocialNetworkInterface> SharedClient<I> {
    /// Wraps a cached client for sharing.
    pub fn new(client: CachedClient<I>) -> Self {
        SharedClient { inner: Arc::new(Mutex::new(client)) }
    }

    /// Runs a closure against the underlying client.
    pub fn with<R>(&self, f: impl FnOnce(&mut CachedClient<I>) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

impl<I: SocialNetworkInterface> QueryClient for SharedClient<I> {
    fn fetch(&mut self, v: NodeId) -> Result<QueryResponse> {
        self.inner.lock().query(v)
    }

    fn fetch_degree(&mut self, v: NodeId) -> Result<usize> {
        self.inner.lock().query_degree(v)
    }

    fn fetch_neighbors_into(&mut self, v: NodeId, out: &mut Vec<NodeId>) -> Result<()> {
        // One lock acquisition covers the query and the copy-out.
        let mut client = self.inner.lock();
        let neighbors = client.query_neighbors(v)?;
        out.clear();
        out.extend_from_slice(neighbors);
        Ok(())
    }

    fn known_degree(&self, v: NodeId) -> Option<usize> {
        self.inner.lock().known_degree(v)
    }

    fn unique_queries(&self) -> u64 {
        self.inner.lock().unique_queries()
    }

    fn num_users_hint(&self) -> Option<usize> {
        self.inner.lock().num_users_hint()
    }

    fn cached_neighbors(&self, v: NodeId) -> Option<Vec<NodeId>> {
        self.inner.lock().neighbors_of(v).map(<[NodeId]>::to_vec)
    }

    fn cached_neighbors_into(&self, v: NodeId, out: &mut Vec<NodeId>) -> bool {
        let client = self.inner.lock();
        out.clear();
        match client.neighbors_of(v) {
            Some(neighbors) => {
                out.extend_from_slice(neighbors);
                true
            }
            None => false,
        }
    }

    fn is_cached(&self, v: NodeId) -> bool {
        self.inner.lock().is_cached(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::OsnService;
    use mto_graph::generators::paper_barbell;

    #[test]
    fn cached_client_implements_query_client() {
        let mut c = CachedClient::new(OsnService::with_defaults(&paper_barbell()));
        let r = QueryClient::fetch(&mut c, NodeId(0)).unwrap();
        assert_eq!(r.degree(), 11);
        assert_eq!(QueryClient::known_degree(&c, NodeId(0)), Some(11));
        assert_eq!(QueryClient::unique_queries(&c), 1);
        assert_eq!(QueryClient::num_users_hint(&c), Some(22));
        assert_eq!(QueryClient::cached_neighbors(&c, NodeId(0)), Some(r.neighbors));
        assert_eq!(QueryClient::cached_neighbors(&c, NodeId(9)), None, "unqueried node");
    }

    #[test]
    fn zero_alloc_methods_bill_like_fetch() {
        let mut c = CachedClient::new(OsnService::with_defaults(&paper_barbell()));
        let mut buf = Vec::new();
        c.fetch_neighbors_into(NodeId(0), &mut buf).unwrap();
        assert_eq!(buf.len(), 11);
        assert_eq!(c.fetch_degree(NodeId(0)).unwrap(), 11);
        assert_eq!(c.fetch_degree(NodeId(1)).unwrap(), 10);
        assert_eq!(QueryClient::unique_queries(&c), 2);
        assert!(c.cached_neighbors_into(NodeId(1), &mut buf));
        assert_eq!(buf.len(), 10);
        assert!(!c.cached_neighbors_into(NodeId(9), &mut buf));
        assert!(buf.is_empty(), "missing node leaves the buffer empty");
    }

    #[test]
    fn shared_client_pools_the_budget() {
        let c = CachedClient::new(OsnService::with_defaults(&paper_barbell()));
        let mut a = SharedClient::new(c);
        let mut b = a.clone();
        a.fetch(NodeId(1)).unwrap();
        b.fetch(NodeId(1)).unwrap();
        let mut buf = Vec::new();
        b.fetch_neighbors_into(NodeId(1), &mut buf).unwrap();
        assert_eq!(buf.len(), 10);
        assert_eq!(a.unique_queries(), 1, "second fetch was a shared cache hit");
        assert_eq!(a.known_degree(NodeId(1)), Some(10));
    }
}
