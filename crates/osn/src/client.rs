//! Client abstraction the samplers walk through.
//!
//! Walkers need: issue `q(v)` with caching, look up remembered degrees
//! (Theorem 5), and report the unique-query cost. [`QueryClient`] captures
//! exactly that, with two implementations:
//!
//! * [`CachedClient`] — exclusive ownership, zero locking (single walker);
//! * [`SharedClient`] — an `Arc<Mutex<CachedClient>>` so parallel walkers
//!   share one cache and one query budget, the deployment the paper
//!   mentions for "many parallel random walks".

use std::sync::Arc;

use mto_graph::NodeId;
use parking_lot::Mutex;

use crate::cache::CachedClient;
use crate::error::Result;
use crate::interface::{QueryResponse, SocialNetworkInterface};

/// The sampler-facing client API.
pub trait QueryClient {
    /// Issues `q(v)` (cached), returning an owned response.
    fn fetch(&mut self, v: NodeId) -> Result<QueryResponse>;

    /// Degree of `v` if it is already known locally (free).
    fn known_degree(&self, v: NodeId) -> Option<usize>;

    /// Unique queries spent so far — the paper's cost measure.
    fn unique_queries(&self) -> u64;

    /// Provider-published total user count, when available.
    fn num_users_hint(&self) -> Option<usize>;

    /// Neighbor list of `v` **if its full response is cached locally**
    /// (free — no request is issued). `None` when only a degree hint or
    /// nothing is known. This is the read the walk-not-wait prefetcher
    /// uses to enumerate speculative targets without spending queries.
    fn cached_neighbors(&self, v: NodeId) -> Option<Vec<NodeId>> {
        let _ = v;
        None
    }

    /// Whether a full response for `v` is cached locally (free).
    fn is_cached(&self, v: NodeId) -> bool {
        self.cached_neighbors(v).is_some()
    }
}

impl<I: SocialNetworkInterface> QueryClient for CachedClient<I> {
    fn fetch(&mut self, v: NodeId) -> Result<QueryResponse> {
        self.query(v).cloned()
    }

    fn known_degree(&self, v: NodeId) -> Option<usize> {
        CachedClient::known_degree(self, v)
    }

    fn unique_queries(&self) -> u64 {
        CachedClient::unique_queries(self)
    }

    fn num_users_hint(&self) -> Option<usize> {
        CachedClient::num_users_hint(self)
    }

    fn cached_neighbors(&self, v: NodeId) -> Option<Vec<NodeId>> {
        self.cached(v).map(|r| r.neighbors.clone())
    }

    fn is_cached(&self, v: NodeId) -> bool {
        CachedClient::is_cached(self, v)
    }
}

/// Thread-safe shared client: many walkers, one cache, one budget.
pub struct SharedClient<I> {
    inner: Arc<Mutex<CachedClient<I>>>,
}

impl<I> Clone for SharedClient<I> {
    fn clone(&self) -> Self {
        SharedClient { inner: self.inner.clone() }
    }
}

impl<I: SocialNetworkInterface> SharedClient<I> {
    /// Wraps a cached client for sharing.
    pub fn new(client: CachedClient<I>) -> Self {
        SharedClient { inner: Arc::new(Mutex::new(client)) }
    }

    /// Runs a closure against the underlying client.
    pub fn with<R>(&self, f: impl FnOnce(&mut CachedClient<I>) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

impl<I: SocialNetworkInterface> QueryClient for SharedClient<I> {
    fn fetch(&mut self, v: NodeId) -> Result<QueryResponse> {
        self.inner.lock().query(v).cloned()
    }

    fn known_degree(&self, v: NodeId) -> Option<usize> {
        self.inner.lock().known_degree(v)
    }

    fn unique_queries(&self) -> u64 {
        self.inner.lock().unique_queries()
    }

    fn num_users_hint(&self) -> Option<usize> {
        self.inner.lock().num_users_hint()
    }

    fn cached_neighbors(&self, v: NodeId) -> Option<Vec<NodeId>> {
        self.inner.lock().cached(v).map(|r| r.neighbors.clone())
    }

    fn is_cached(&self, v: NodeId) -> bool {
        self.inner.lock().is_cached(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::OsnService;
    use mto_graph::generators::paper_barbell;

    #[test]
    fn cached_client_implements_query_client() {
        let mut c = CachedClient::new(OsnService::with_defaults(&paper_barbell()));
        let r = QueryClient::fetch(&mut c, NodeId(0)).unwrap();
        assert_eq!(r.degree(), 11);
        assert_eq!(QueryClient::unique_queries(&c), 1);
        assert_eq!(QueryClient::known_degree(&c, NodeId(0)), Some(11));
        assert_eq!(QueryClient::num_users_hint(&c), Some(22));
        assert!(QueryClient::is_cached(&c, NodeId(0)));
        assert_eq!(QueryClient::cached_neighbors(&c, NodeId(0)), Some(r.neighbors));
        assert_eq!(QueryClient::cached_neighbors(&c, NodeId(9)), None, "unqueried node");
    }

    #[test]
    fn shared_client_pools_budget_across_clones() {
        let c = CachedClient::new(OsnService::with_defaults(&paper_barbell()));
        let mut a = SharedClient::new(c);
        let mut b = a.clone();
        a.fetch(NodeId(0)).unwrap();
        b.fetch(NodeId(0)).unwrap(); // cache hit through the other handle
        b.fetch(NodeId(1)).unwrap();
        assert_eq!(a.unique_queries(), 2);
        assert_eq!(b.unique_queries(), 2);
        assert_eq!(a.known_degree(NodeId(1)), Some(10));
    }

    #[test]
    fn shared_client_is_send_across_threads() {
        let c = CachedClient::new(OsnService::with_defaults(&paper_barbell()));
        let shared = SharedClient::new(c);
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let mut s = shared.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..22u32 {
                    s.fetch(NodeId((i + t) % 22)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.unique_queries(), 22, "every node cached exactly once");
    }
}
