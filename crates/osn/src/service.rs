//! In-memory simulated social-network service.
//!
//! [`OsnService`] owns a frozen topology plus per-user profiles and serves
//! the [`SocialNetworkInterface`]. It is the stand-in for the live Google
//! Plus API of Section V (retired in 2012), and for the "simulated
//! individual-user-query-only web interface" the paper runs over its local
//! Epinions/Slashdot snapshots.
//!
//! The service is `Sync`: experiments run many walkers against one shared
//! `Arc<OsnService>`; request accounting uses atomics and failure injection
//! a small seeded lock-protected generator.

use std::sync::atomic::{AtomicU64, Ordering};

use mto_graph::{CsrGraph, Graph, NodeId};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{OsnError, Result};
use crate::interface::{QueryResponse, SocialNetworkInterface};
use crate::profile::{ProfileGenerator, UserProfile};

/// Configuration for [`OsnService`].
#[derive(Clone, Debug)]
pub struct OsnServiceConfig {
    /// Seed for profile synthesis.
    pub profile_seed: u64,
    /// Whether the provider advertises its total user count.
    pub publishes_user_count: bool,
    /// Probability that any given request fails transiently (resilience
    /// testing; 0.0 disables injection).
    pub transient_failure_rate: f64,
    /// Seed for the failure-injection stream.
    pub failure_seed: u64,
}

impl Default for OsnServiceConfig {
    fn default() -> Self {
        OsnServiceConfig {
            profile_seed: 0xC0FFEE,
            publishes_user_count: true,
            transient_failure_rate: 0.0,
            failure_seed: 0xBAD5EED,
        }
    }
}

/// The simulated network: topology + profiles behind the restrictive
/// interface.
pub struct OsnService {
    graph: CsrGraph,
    profiles: Vec<UserProfile>,
    publishes_user_count: bool,
    requests: AtomicU64,
    failed_requests: AtomicU64,
    transient_failure_rate: f64,
    failure_rng: Mutex<StdRng>,
    /// Per-user failure counts, for the `attempt` field of transient errors.
    failure_counts: Mutex<std::collections::HashMap<NodeId, u32>>,
}

impl OsnService {
    /// Builds a service over a topology, synthesizing profiles.
    pub fn new(graph: &Graph, config: OsnServiceConfig) -> Self {
        let profiles = ProfileGenerator::new(config.profile_seed).generate_all(graph);
        OsnService {
            graph: CsrGraph::from_graph(graph),
            profiles,
            publishes_user_count: config.publishes_user_count,
            requests: AtomicU64::new(0),
            failed_requests: AtomicU64::new(0),
            transient_failure_rate: config.transient_failure_rate,
            failure_rng: Mutex::new(StdRng::seed_from_u64(config.failure_seed)),
            failure_counts: Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Builds with default configuration.
    pub fn with_defaults(graph: &Graph) -> Self {
        OsnService::new(graph, OsnServiceConfig::default())
    }

    /// The ground-truth graph — for *evaluation only*. Samplers must never
    /// touch this; they see the world through [`SocialNetworkInterface`].
    pub fn ground_truth(&self) -> &CsrGraph {
        &self.graph
    }

    /// Ground-truth profiles — for evaluation only.
    pub fn ground_truth_profiles(&self) -> &[UserProfile] {
        &self.profiles
    }

    /// Ground-truth average degree, the Fig 7 aggregate.
    pub fn true_average_degree(&self) -> f64 {
        self.graph.volume() as f64 / self.graph.num_nodes() as f64
    }

    /// Ground-truth average self-description length, the Fig 11(c)
    /// aggregate.
    pub fn true_average_description_len(&self) -> f64 {
        let total: u64 = self.profiles.iter().map(|p| p.self_description_len as u64).sum();
        total as f64 / self.profiles.len() as f64
    }

    /// Number of requests that failed transiently.
    pub fn failed_requests(&self) -> u64 {
        self.failed_requests.load(Ordering::Relaxed)
    }
}

impl SocialNetworkInterface for OsnService {
    fn query(&self, v: NodeId) -> Result<QueryResponse> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if v.index() >= self.graph.num_nodes() {
            return Err(OsnError::UnknownUser(v));
        }
        if self.transient_failure_rate > 0.0 {
            let fail = self.failure_rng.lock().gen::<f64>() < self.transient_failure_rate;
            if fail {
                self.failed_requests.fetch_add(1, Ordering::Relaxed);
                let mut counts = self.failure_counts.lock();
                let attempt = counts.entry(v).or_insert(0);
                *attempt += 1;
                return Err(OsnError::Transient { user: v, attempt: *attempt });
            }
        }
        Ok(QueryResponse {
            user: v,
            neighbors: self.graph.neighbors(v).to_vec(),
            profile: self.profiles[v.index()].clone(),
        })
    }

    fn num_users_hint(&self) -> Option<usize> {
        self.publishes_user_count.then(|| self.graph.num_nodes())
    }

    fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::generators::paper_barbell;

    fn service() -> OsnService {
        OsnService::with_defaults(&paper_barbell())
    }

    #[test]
    fn query_returns_full_neighborhood() {
        let s = service();
        let r = s.query(NodeId(0)).unwrap();
        assert_eq!(r.user, NodeId(0));
        assert_eq!(r.degree(), 11);
        assert!(r.neighbors.contains(&NodeId(11)));
        assert!(r.neighbors.windows(2).all(|w| w[0] < w[1]), "sorted");
    }

    #[test]
    fn unknown_user_is_an_error_but_counts_as_request() {
        let s = service();
        assert_eq!(s.query(NodeId(99)), Err(OsnError::UnknownUser(NodeId(99))));
        assert_eq!(s.requests_served(), 1);
    }

    #[test]
    fn request_accounting_increments() {
        let s = service();
        for _ in 0..5 {
            s.query(NodeId(1)).unwrap();
        }
        assert_eq!(s.requests_served(), 5, "duplicates are NOT free at the service");
    }

    #[test]
    fn user_count_hint_follows_config() {
        let g = paper_barbell();
        let public = OsnService::new(&g, OsnServiceConfig::default());
        assert_eq!(public.num_users_hint(), Some(22));
        let private = OsnService::new(
            &g,
            OsnServiceConfig { publishes_user_count: false, ..Default::default() },
        );
        assert_eq!(private.num_users_hint(), None);
    }

    #[test]
    fn profiles_are_stable_across_service_builds() {
        let g = paper_barbell();
        let a = OsnService::with_defaults(&g);
        let b = OsnService::with_defaults(&g);
        let ra = a.query(NodeId(3)).unwrap();
        let rb = b.query(NodeId(3)).unwrap();
        assert_eq!(ra.profile, rb.profile);
    }

    #[test]
    fn failure_injection_fails_some_requests() {
        let g = paper_barbell();
        let s = OsnService::new(
            &g,
            OsnServiceConfig { transient_failure_rate: 0.5, ..Default::default() },
        );
        let mut failures = 0;
        for _ in 0..200 {
            if s.query(NodeId(0)).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 50 && failures < 150, "got {failures}/200 failures");
        assert_eq!(s.failed_requests(), failures as u64);
    }

    #[test]
    fn transient_errors_carry_attempt_numbers() {
        let g = paper_barbell();
        let s = OsnService::new(
            &g,
            OsnServiceConfig { transient_failure_rate: 1.0, ..Default::default() },
        );
        match s.query(NodeId(2)) {
            Err(OsnError::Transient { user, attempt: 1 }) => assert_eq!(user, NodeId(2)),
            other => panic!("expected first transient failure, got {other:?}"),
        }
        match s.query(NodeId(2)) {
            Err(OsnError::Transient { attempt: 2, .. }) => {}
            other => panic!("expected second transient failure, got {other:?}"),
        }
    }

    #[test]
    fn ground_truth_aggregates() {
        let s = service();
        assert!((s.true_average_degree() - 222.0 / 22.0).abs() < 1e-12);
        assert!(s.true_average_description_len() >= 0.0);
    }

    #[test]
    fn service_is_shareable_across_threads() {
        let s = std::sync::Arc::new(service());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u32 {
                    let v = NodeId((t * 50 + i) % 22);
                    s.query(v).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.requests_served(), 200);
    }
}
