//! The shared virtual clock of the simulation stack.
//!
//! Rate limiting ([`crate::rate_limit::RateLimitedInterface`]) and the
//! discrete-event network engine (`mto-net`) both reason about *virtual*
//! time: experiments report "this sampling run would have taken N hours
//! against the live API" without ever sleeping. They must agree on what
//! time it is — a token bucket refilling on one clock while the event
//! queue advances another would silently decouple quota from latency — so
//! there is exactly one clock type, defined here (the lowest layer that
//! needs it) and re-exported by `mto-net` as its event clock.
//!
//! The clock is a cheap cloneable handle (`Arc<AtomicU64>` microseconds):
//! every wrapper that shares a handle sees every advance, and reads never
//! take a lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotone virtual time in microseconds, shared across clones.
///
/// All arithmetic is on integer microseconds so concurrent advances
/// cannot lose precision; the public API speaks `f64` seconds, matching
/// the token bucket and latency models.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    now_us: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A fresh clock at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now_us() as f64 / 1e6
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }

    /// Advances by `seconds` (rounded up to a whole microsecond so every
    /// positive advance is visible) and returns the new time in seconds.
    pub fn advance(&self, seconds: f64) -> f64 {
        let us = Self::secs_to_us(seconds);
        let prev = self.now_us.fetch_add(us, Ordering::Relaxed);
        (prev + us) as f64 / 1e6
    }

    /// Moves the clock forward to `target_us` if it is ahead of now
    /// (monotone — a target in the past is a no-op), returning the
    /// resulting time in microseconds.
    pub fn advance_to_us(&self, target_us: u64) -> u64 {
        self.now_us.fetch_max(target_us, Ordering::Relaxed).max(target_us)
    }

    /// Seconds rounded up to whole microseconds (the clock's resolution).
    pub fn secs_to_us(seconds: f64) -> u64 {
        (seconds * 1e6).ceil() as u64
    }

    /// Microseconds as seconds.
    pub fn us_to_secs(us: u64) -> f64 {
        us as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now_us(), 0);
        let t = c.advance(1.5);
        assert!((t - 1.5).abs() < 1e-9);
        assert_eq!(c.now_us(), 1_500_000);
    }

    #[test]
    fn clones_share_one_timeline() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(2.0);
        assert_eq!(b.now_us(), 2_000_000);
        b.advance(0.5);
        assert_eq!(a.now_us(), 2_500_000);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = VirtualClock::new();
        assert_eq!(c.advance_to_us(300), 300);
        assert_eq!(c.advance_to_us(100), 300, "moving backwards is a no-op");
        assert_eq!(c.now_us(), 300);
    }

    #[test]
    fn sub_microsecond_advances_are_never_lost() {
        let c = VirtualClock::new();
        c.advance(1e-9);
        assert!(c.now_us() >= 1, "positive advances round up to one tick");
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(VirtualClock::secs_to_us(0.05), 50_000);
        assert!((VirtualClock::us_to_secs(50_000) - 0.05).abs() < 1e-12);
    }
}
