//! The restrictive web interface of Section II-A.
//!
//! Everything a third party can do is issue
//! `q(v): SELECT * FROM D WHERE USER-ID = v`, which returns the user's
//! published information and the list of connected users. No global
//! topology, no random-node endpoint, no bulk export — exactly the access
//! model of Google Plus / Facebook that the paper works under.

use mto_graph::NodeId;

use crate::error::Result;
use crate::profile::UserProfile;

/// Everything one individual-user query reveals.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResponse {
    /// The queried user.
    pub user: NodeId,
    /// All users connected to `user` (the full neighborhood `N(v)`),
    /// sorted by id.
    pub neighbors: Vec<NodeId>,
    /// The user's published profile.
    pub profile: UserProfile,
}

impl QueryResponse {
    /// Degree of the queried user, `k_v = |N(v)|`.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }
}

/// A restrictive per-user query interface.
///
/// Implementations: [`crate::service::OsnService`] (in-memory simulated
/// network), [`crate::rate_limit::RateLimitedInterface`] (adds quota
/// enforcement), and test doubles.
pub trait SocialNetworkInterface {
    /// Issues the individual-user query `q(v)`.
    ///
    /// Every call counts against the interface's request accounting —
    /// clients that want duplicate queries answered for free must go
    /// through [`crate::cache::CachedClient`].
    fn query(&self, v: NodeId) -> Result<QueryResponse>;

    /// Total number of users, if the provider publishes it (the paper notes
    /// many providers advertise `|V|`, enabling COUNT/SUM estimates and the
    /// Random Jump baseline's id space).
    fn num_users_hint(&self) -> Option<usize>;

    /// Number of requests served so far (including failed ones that
    /// consumed quota).
    fn requests_served(&self) -> u64;
}

impl<T: SocialNetworkInterface + ?Sized> SocialNetworkInterface for &T {
    fn query(&self, v: NodeId) -> Result<QueryResponse> {
        (**self).query(v)
    }
    fn num_users_hint(&self) -> Option<usize> {
        (**self).num_users_hint()
    }
    fn requests_served(&self) -> u64 {
        (**self).requests_served()
    }
}

impl<T: SocialNetworkInterface + ?Sized> SocialNetworkInterface for std::sync::Arc<T> {
    fn query(&self, v: NodeId) -> Result<QueryResponse> {
        (**self).query(v)
    }
    fn num_users_hint(&self) -> Option<usize> {
        (**self).num_users_hint()
    }
    fn requests_served(&self) -> u64 {
        (**self).requests_served()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_response_degree() {
        let r = QueryResponse {
            user: NodeId(0),
            neighbors: vec![NodeId(1), NodeId(2)],
            profile: UserProfile {
                age: 25,
                self_description_len: 10,
                num_posts: 1,
                is_public: true,
            },
        };
        assert_eq!(r.degree(), 2);
    }
}
