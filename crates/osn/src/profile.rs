//! Synthetic user profiles.
//!
//! The Google Plus experiment (Fig 11) estimates the average *length of the
//! user self-description* alongside the average degree. The simulated
//! network therefore attaches to every user a profile with the attributes
//! the paper aggregates over — plus a couple more so examples can pose
//! richer queries (selection conditions, COUNT/SUM with known `|V|`).
//!
//! Attribute distributions are chosen to stress the estimators the same way
//! live data would:
//! * `self_description_len` is zero-inflated and log-normal, *positively
//!   correlated with degree* — so a degree-biased sampler that skips
//!   importance re-weighting visibly overestimates it;
//! * `num_posts` is heavy-tailed and degree-correlated;
//! * `age` is roughly normal and independent of degree.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Profile of one simulated user.
#[derive(Clone, Debug, PartialEq)]
pub struct UserProfile {
    /// Age in years (13–90).
    pub age: u32,
    /// Number of characters of the self-description (0 when absent).
    pub self_description_len: u32,
    /// Number of posts published.
    pub num_posts: u32,
    /// Whether the account is public (selection-condition fodder).
    pub is_public: bool,
}

impl UserProfile {
    /// Synthesizes a description string of the recorded length (profiles
    /// store only the length to keep 240k-user networks cheap; the text
    /// itself is immaterial to every experiment).
    pub fn synthesize_description(&self) -> String {
        const CORPUS: &[u8] = b"social graphs mix slowly without rewiring ";
        (0..self.self_description_len as usize).map(|i| CORPUS[i % CORPUS.len()] as char).collect()
    }
}

/// Deterministic profile generator.
///
/// Each node's profile is a pure function of `(seed, node_index, degree)`,
/// so services built twice from the same graph agree exactly.
#[derive(Clone, Copy, Debug)]
pub struct ProfileGenerator {
    /// Master seed.
    pub seed: u64,
}

impl ProfileGenerator {
    /// New generator with the given master seed.
    pub fn new(seed: u64) -> Self {
        ProfileGenerator { seed }
    }

    /// Generates the profile for node `index` with the given degree.
    pub fn generate(&self, index: usize, degree: usize) -> UserProfile {
        // Distinct stream per node: mix the index into the seed.
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));

        let age = sample_age(&mut rng);
        let self_description_len = sample_description_len(&mut rng, degree);
        let num_posts = sample_num_posts(&mut rng, degree);
        let is_public = rng.gen::<f64>() < 0.7;
        UserProfile { age, self_description_len, num_posts, is_public }
    }

    /// Generates profiles for all nodes of a graph.
    pub fn generate_all(&self, g: &mto_graph::Graph) -> Vec<UserProfile> {
        g.nodes().map(|v| self.generate(v.index(), g.degree(v))).collect()
    }
}

fn sample_age<R: Rng + ?Sized>(rng: &mut R) -> u32 {
    // Box–Muller normal(32, 12) clamped to [13, 90].
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (32.0 + 12.0 * z).clamp(13.0, 90.0).round() as u32
}

fn sample_description_len<R: Rng + ?Sized>(rng: &mut R, degree: usize) -> u32 {
    // 30% of users have no self-description at all.
    if rng.gen::<f64>() < 0.3 {
        return 0;
    }
    // Log-normal body whose location grows slowly with degree: active,
    // well-connected users write more about themselves.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let mu = 3.2 + 0.25 * ((degree as f64) + 1.0).ln();
    let len = (mu + 0.8 * z).exp();
    len.clamp(1.0, 5000.0) as u32
}

fn sample_num_posts<R: Rng + ?Sized>(rng: &mut R, degree: usize) -> u32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let mu = 1.0 + 0.6 * ((degree as f64) + 1.0).ln();
    (mu + 1.1 * z).exp().clamp(0.0, 100_000.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g = ProfileGenerator::new(42);
        assert_eq!(g.generate(7, 12), g.generate(7, 12));
        assert_eq!(ProfileGenerator::new(42).generate(7, 12), g.generate(7, 12));
    }

    #[test]
    fn different_nodes_get_different_profiles() {
        let g = ProfileGenerator::new(42);
        // A collision across all fields for adjacent indices would suggest
        // broken seed mixing.
        assert_ne!(g.generate(1, 10), g.generate(2, 10));
    }

    #[test]
    fn ages_stay_in_range() {
        let g = ProfileGenerator::new(7);
        for i in 0..2000 {
            let p = g.generate(i, 5);
            assert!((13..=90).contains(&p.age), "age {}", p.age);
        }
    }

    #[test]
    fn description_length_is_zero_inflated() {
        let g = ProfileGenerator::new(9);
        let profiles: Vec<UserProfile> = (0..4000).map(|i| g.generate(i, 10)).collect();
        let zeros = profiles.iter().filter(|p| p.self_description_len == 0).count();
        let frac = zeros as f64 / profiles.len() as f64;
        assert!((frac - 0.3).abs() < 0.05, "zero fraction {frac}");
    }

    #[test]
    fn description_length_grows_with_degree() {
        let g = ProfileGenerator::new(11);
        let mean = |deg: usize| -> f64 {
            (0..3000).map(|i| g.generate(i, deg).self_description_len as f64).sum::<f64>() / 3000.0
        };
        let low = mean(2);
        let high = mean(200);
        assert!(
            high > 1.3 * low,
            "degree correlation missing: deg2 mean {low}, deg200 mean {high}"
        );
    }

    #[test]
    fn posts_are_heavy_tailed() {
        let g = ProfileGenerator::new(3);
        let mut posts: Vec<u32> = (0..4000).map(|i| g.generate(i, 20).num_posts).collect();
        posts.sort_unstable();
        let median = posts[posts.len() / 2] as f64;
        let p99 = posts[(posts.len() as f64 * 0.99) as usize] as f64;
        assert!(p99 > 4.0 * median.max(1.0), "median {median}, p99 {p99}");
    }

    #[test]
    fn synthesize_description_has_requested_length() {
        let p = UserProfile { age: 30, self_description_len: 57, num_posts: 3, is_public: true };
        assert_eq!(p.synthesize_description().len(), 57);
        let empty = UserProfile { age: 30, self_description_len: 0, num_posts: 3, is_public: true };
        assert!(empty.synthesize_description().is_empty());
    }

    #[test]
    fn generate_all_covers_graph() {
        let graph = mto_graph::generators::paper_barbell();
        let profiles = ProfileGenerator::new(1).generate_all(&graph);
        assert_eq!(profiles.len(), 22);
    }

    #[test]
    fn public_fraction_near_seventy_percent() {
        let g = ProfileGenerator::new(13);
        let public = (0..4000).filter(|&i| g.generate(i, 5).is_public).count();
        let frac = public as f64 / 4000.0;
        assert!((frac - 0.7).abs() < 0.05, "public fraction {frac}");
    }
}
