//! Client-side cache with unique-query accounting.
//!
//! The paper's cost model (Section II-B): *"we consider the number of
//! unique queries one has to issue for the sampling process, as any
//! duplicate query can be answered from local cache without consuming the
//! query limit"*. [`CachedClient`] is that local cache — it also doubles as
//! the "local database" of Section III-D whose remembered degrees power the
//! Theorem 5 extension.

use std::collections::HashMap;

use mto_graph::NodeId;

use crate::error::Result;
use crate::interface::{QueryResponse, SocialNetworkInterface};

/// Caching wrapper around any [`SocialNetworkInterface`].
pub struct CachedClient<I> {
    inner: I,
    cache: HashMap<NodeId, QueryResponse>,
    /// Requests that reached the backing interface (unique query cost).
    unique_queries: u64,
    /// All `query` calls, including cache hits.
    total_lookups: u64,
    /// Retries spent on transient failures (these do not consume quota).
    transient_retries: u64,
    /// Hard cap on consecutive transient retries per query.
    max_retries: u32,
}

impl<I: SocialNetworkInterface> CachedClient<I> {
    /// Wraps an interface.
    pub fn new(inner: I) -> Self {
        CachedClient {
            inner,
            cache: HashMap::new(),
            unique_queries: 0,
            total_lookups: 0,
            transient_retries: 0,
            max_retries: 16,
        }
    }

    /// Issues `q(v)`, served from cache when possible. Transient failures
    /// are retried up to the configured cap.
    pub fn query(&mut self, v: NodeId) -> Result<&QueryResponse> {
        self.total_lookups += 1;
        // Borrow-checker friendly double lookup: entry API would hold a
        // mutable borrow across the network call.
        if !self.cache.contains_key(&v) {
            let mut attempt = 0u32;
            let response = loop {
                match self.inner.query(v) {
                    Ok(r) => break r,
                    Err(crate::error::OsnError::Transient { .. }) if attempt < self.max_retries => {
                        attempt += 1;
                        self.transient_retries += 1;
                    }
                    Err(e) => return Err(e),
                }
            };
            self.unique_queries += 1;
            self.cache.insert(v, response);
        }
        Ok(&self.cache[&v])
    }

    /// The paper's query cost: unique queries issued so far.
    pub fn unique_queries(&self) -> u64 {
        self.unique_queries
    }

    /// All lookups including cache hits.
    pub fn total_lookups(&self) -> u64 {
        self.total_lookups
    }

    /// Transient-failure retries performed.
    pub fn transient_retries(&self) -> u64 {
        self.transient_retries
    }

    /// Whether `v` has been queried (and thus its full neighborhood and
    /// degree are known locally).
    pub fn is_cached(&self, v: NodeId) -> bool {
        self.cache.contains_key(&v)
    }

    /// Degree of `v` **if known from history** — the Theorem 5 `N*`
    /// lookup. Free: no request is issued.
    pub fn known_degree(&self, v: NodeId) -> Option<usize> {
        self.cache.get(&v).map(|r| r.neighbors.len())
    }

    /// Cached response for `v`, if any (free).
    pub fn cached(&self, v: NodeId) -> Option<&QueryResponse> {
        self.cache.get(&v)
    }

    /// Nodes whose neighborhoods are known.
    pub fn cached_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.cache.keys().copied()
    }

    /// Access to the wrapped interface.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Total user count hint from the provider.
    pub fn num_users_hint(&self) -> Option<usize> {
        self.inner.num_users_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{OsnService, OsnServiceConfig};
    use mto_graph::generators::paper_barbell;

    fn client() -> CachedClient<OsnService> {
        CachedClient::new(OsnService::with_defaults(&paper_barbell()))
    }

    #[test]
    fn duplicate_queries_are_free() {
        let mut c = client();
        c.query(NodeId(0)).unwrap();
        c.query(NodeId(0)).unwrap();
        c.query(NodeId(0)).unwrap();
        assert_eq!(c.unique_queries(), 1);
        assert_eq!(c.total_lookups(), 3);
        assert_eq!(c.inner().requests_served(), 1, "backend saw one request");
    }

    #[test]
    fn distinct_queries_each_cost_one() {
        let mut c = client();
        for v in [0u32, 1, 2, 1, 0, 3] {
            c.query(NodeId(v)).unwrap();
        }
        assert_eq!(c.unique_queries(), 4);
    }

    #[test]
    fn known_degree_only_after_query() {
        let mut c = client();
        assert_eq!(c.known_degree(NodeId(5)), None);
        c.query(NodeId(5)).unwrap();
        assert_eq!(c.known_degree(NodeId(5)), Some(10));
        assert!(c.is_cached(NodeId(5)));
        assert!(!c.is_cached(NodeId(6)));
    }

    #[test]
    fn cached_returns_without_cost() {
        let mut c = client();
        assert!(c.cached(NodeId(1)).is_none());
        c.query(NodeId(1)).unwrap();
        let before = c.unique_queries();
        let r = c.cached(NodeId(1)).expect("cached");
        assert_eq!(r.user, NodeId(1));
        assert_eq!(c.unique_queries(), before);
    }

    #[test]
    fn unknown_user_error_propagates() {
        let mut c = client();
        assert!(c.query(NodeId(404)).is_err());
        // Failed queries are not cached.
        assert!(!c.is_cached(NodeId(404)));
    }

    #[test]
    fn transient_failures_are_retried() {
        let g = paper_barbell();
        let svc = OsnService::new(
            &g,
            OsnServiceConfig { transient_failure_rate: 0.4, ..Default::default() },
        );
        let mut c = CachedClient::new(svc);
        // All queries must eventually succeed despite 40% failure rate.
        for v in 0..22u32 {
            c.query(NodeId(v)).unwrap();
        }
        assert_eq!(c.unique_queries(), 22);
        assert!(c.transient_retries() > 0, "expected some retries at 40% failure rate");
    }

    #[test]
    fn cached_nodes_enumerates_history() {
        let mut c = client();
        c.query(NodeId(2)).unwrap();
        c.query(NodeId(7)).unwrap();
        let mut nodes: Vec<u32> = c.cached_nodes().map(|n| n.0).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![2, 7]);
    }
}
