//! Client-side cache with unique-query accounting.
//!
//! The paper's cost model (Section II-B): *"we consider the number of
//! unique queries one has to issue for the sampling process, as any
//! duplicate query can be answered from local cache without consuming the
//! query limit"*. [`CachedClient`] is that local cache — it also doubles as
//! the "local database" of Section III-D whose remembered degrees power the
//! Theorem 5 extension.
//!
//! Storage layout: node ids are dense (`OsnService` assigns `0..n`), so the
//! cache is a [`NeighborArena`] — a CSR-style flat store holding **every**
//! cached neighbor list in one contiguous `Vec<NodeId>`, with a dense
//! per-node `(offset, len)` span table beside it. The hot-path lookup is
//! one bounds check plus an indexed load yielding a *borrowed*
//! `&[NodeId]`, with no hashing, no per-node heap allocation, and no
//! response clone (`bench_hotpath`'s `hotpath/arena` group measures the
//! win over the previous one-`Vec`-per-node slot map). Degrees remembered
//! *without* a full neighborhood (e.g. imported from an older crawl whose
//! responses were discarded) live in a sparse side table.
//!
//! The whole history is exportable as a [`CacheSnapshot`] and re-importable
//! into a fresh client — the hook `mto-serve`'s persistent `HistoryStore`
//! builds on for cross-run warm starts.

use std::collections::HashMap;

use mto_graph::NodeId;

use crate::error::Result;
use crate::interface::{QueryResponse, SocialNetworkInterface};
use crate::profile::UserProfile;

/// Location of one cached neighbor list inside the arena's flat data.
#[derive(Clone, Copy, Debug)]
struct Span {
    offset: usize,
    len: u32,
}

/// CSR-style flat neighborhood storage: all cached neighbor lists live
/// concatenated in one contiguous `Vec<NodeId>`, addressed by a dense
/// per-node span table. Reads borrow straight out of the arena —
/// steady-state walking never clones a neighbor list.
///
/// Re-inserting a node whose new list fits its old span overwrites in
/// place; a longer list is appended and the old span becomes garbage
/// (bounded by re-import churn, which honest workloads do at most once
/// per node — [`NeighborArena::data_len`] exposes the raw size so tests
/// can watch for pathological growth).
#[derive(Debug, Default)]
pub struct NeighborArena {
    /// Every cached neighbor list, concatenated in first-insertion order.
    data: Vec<NodeId>,
    /// Dense slot map: `slots[v.index()]` locates `v`'s list and profile.
    slots: Vec<Option<(Span, UserProfile)>>,
    /// Number of occupied slots.
    cached: usize,
    /// Re-inserts that fit their old span and overwrote in place.
    rewrites_in_place: u64,
    /// `NodeId`s orphaned by append-and-leak replacements — the churn
    /// signal the observability layer reports as arena compaction debt.
    leaked_ids: u64,
}

impl NeighborArena {
    /// An empty arena.
    pub fn new() -> Self {
        NeighborArena::default()
    }

    /// Borrowed neighbor list of `v`, if cached.
    #[inline]
    pub fn neighbors_of(&self, v: NodeId) -> Option<&[NodeId]> {
        let (span, _) = self.slots.get(v.index())?.as_ref()?;
        Some(&self.data[span.offset..span.offset + span.len as usize])
    }

    /// Borrowed profile of `v`, if cached.
    #[inline]
    pub fn profile_of(&self, v: NodeId) -> Option<&UserProfile> {
        let (_, profile) = self.slots.get(v.index())?.as_ref()?;
        Some(profile)
    }

    /// Degree of `v`, if cached (no slice construction).
    #[inline]
    pub fn degree_of(&self, v: NodeId) -> Option<usize> {
        let (span, _) = self.slots.get(v.index())?.as_ref()?;
        Some(span.len as usize)
    }

    /// Whether `v` has a cached neighborhood.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.slots.get(v.index()).is_some_and(Option::is_some)
    }

    /// Number of cached nodes.
    pub fn len(&self) -> usize {
        self.cached
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.cached == 0
    }

    /// Total `NodeId`s in the flat store, including any leaked spans.
    pub fn data_len(&self) -> usize {
        self.data.len()
    }

    /// Re-inserts that overwrote their old span in place.
    pub fn rewrites_in_place(&self) -> u64 {
        self.rewrites_in_place
    }

    /// `NodeId`s orphaned by append-and-leak replacements.
    pub fn leaked_ids(&self) -> u64 {
        self.leaked_ids
    }

    /// Cached nodes, ascending id.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// Inserts (or replaces) `v`'s neighborhood and profile.
    pub fn insert(&mut self, v: NodeId, neighbors: &[NodeId], profile: UserProfile) {
        let i = v.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let span = match self.slots[i].take() {
            // Overwrite in place when the replacement fits the old span.
            Some((old, _)) if neighbors.len() <= old.len as usize => {
                let dst = &mut self.data[old.offset..old.offset + neighbors.len()];
                dst.copy_from_slice(neighbors);
                self.rewrites_in_place += 1;
                Span { offset: old.offset, len: neighbors.len() as u32 }
            }
            existing => {
                // First insert, or a longer replacement: append. A
                // replaced node's old span is leaked (bounded by re-import
                // churn; `data_len` keeps it visible to tests).
                match existing {
                    None => self.cached += 1,
                    Some((old, _)) => self.leaked_ids += u64::from(old.len),
                }
                let offset = self.data.len();
                self.data.extend_from_slice(neighbors);
                Span { offset, len: neighbors.len() as u32 }
            }
        };
        self.slots[i] = Some((span, profile));
    }
}

/// Caching wrapper around any [`SocialNetworkInterface`].
pub struct CachedClient<I> {
    inner: I,
    /// Flat CSR-style neighborhood store (see [`NeighborArena`]).
    arena: NeighborArena,
    /// Degrees known *without* a cached neighborhood (sparse; a full
    /// response in the arena always takes precedence).
    degree_hints: HashMap<NodeId, usize>,
    /// Requests that reached the backing interface (unique query cost).
    unique_queries: u64,
    /// All `query` calls, including cache hits.
    total_lookups: u64,
    /// Retries spent on transient failures (these do not consume quota).
    transient_retries: u64,
    /// Hard cap on consecutive transient retries per query.
    max_retries: u32,
}

/// A portable export of everything a [`CachedClient`] has learned: the
/// cached responses, the remembered degrees, and the cost counters.
///
/// Snapshots are deterministic (responses sorted by node id, hints sorted
/// by node id) so two clients with the same history export byte-identical
/// snapshots — which is what makes the `mto-serve` history codec's
/// round-trip guarantees testable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CacheSnapshot {
    /// Cached responses, ascending node id.
    pub responses: Vec<QueryResponse>,
    /// Degrees remembered without a neighborhood, ascending node id.
    pub degree_hints: Vec<(NodeId, usize)>,
    /// Unique queries charged when the snapshot was taken.
    pub unique_queries: u64,
    /// Total lookups (including cache hits) when the snapshot was taken.
    pub total_lookups: u64,
    /// Transient retries performed when the snapshot was taken.
    pub transient_retries: u64,
}

impl<I: SocialNetworkInterface> CachedClient<I> {
    /// Wraps an interface.
    pub fn new(inner: I) -> Self {
        CachedClient {
            inner,
            arena: NeighborArena::new(),
            degree_hints: HashMap::new(),
            unique_queries: 0,
            total_lookups: 0,
            transient_retries: 0,
            max_retries: 16,
        }
    }

    /// One billed lookup: makes sure `v` is cached, retrying transient
    /// failures up to the configured cap. Every `query*` accessor funnels
    /// through here so the lookup accounting is identical regardless of
    /// which shape of answer the caller wants.
    fn ensure(&mut self, v: NodeId) -> Result<()> {
        self.total_lookups += 1;
        if !self.arena.contains(v) {
            let mut attempt = 0u32;
            let response = loop {
                match self.inner.query(v) {
                    Ok(r) => break r,
                    Err(crate::error::OsnError::Transient { .. }) if attempt < self.max_retries => {
                        attempt += 1;
                        self.transient_retries += 1;
                    }
                    Err(e) => return Err(e),
                }
            };
            self.unique_queries += 1;
            self.arena.insert(v, &response.neighbors, response.profile);
        }
        Ok(())
    }

    /// Issues `q(v)`, served from cache when possible, returning an owned
    /// response materialized from the arena. Transient failures are
    /// retried up to the configured cap. Hot paths should prefer the
    /// borrowing [`CachedClient::query_neighbors`] /
    /// [`CachedClient::query_degree`], which never allocate.
    pub fn query(&mut self, v: NodeId) -> Result<QueryResponse> {
        self.ensure(v)?;
        Ok(QueryResponse {
            user: v,
            neighbors: self.arena.neighbors_of(v).expect("ensured above").to_vec(),
            profile: self.arena.profile_of(v).expect("ensured above").clone(),
        })
    }

    /// Issues `q(v)` (cached) and returns the neighbor list **borrowed
    /// from the arena** — the zero-allocation hot path.
    pub fn query_neighbors(&mut self, v: NodeId) -> Result<&[NodeId]> {
        self.ensure(v)?;
        Ok(self.arena.neighbors_of(v).expect("ensured above"))
    }

    /// Issues `q(v)` (cached) and returns only the degree.
    pub fn query_degree(&mut self, v: NodeId) -> Result<usize> {
        self.ensure(v)?;
        Ok(self.arena.degree_of(v).expect("ensured above"))
    }

    /// The paper's query cost: unique queries issued so far.
    pub fn unique_queries(&self) -> u64 {
        self.unique_queries
    }

    /// All lookups including cache hits.
    pub fn total_lookups(&self) -> u64 {
        self.total_lookups
    }

    /// Transient-failure retries performed.
    pub fn transient_retries(&self) -> u64 {
        self.transient_retries
    }

    /// Whether `v` has been queried (and thus its full neighborhood and
    /// degree are known locally).
    pub fn is_cached(&self, v: NodeId) -> bool {
        self.arena.contains(v)
    }

    /// Number of users whose neighborhoods are cached.
    pub fn num_cached(&self) -> usize {
        self.arena.len()
    }

    /// Degree of `v` **if known from history** — the Theorem 5 `N*`
    /// lookup. Free: no request is issued. A cached neighborhood wins over
    /// a remembered degree hint.
    pub fn known_degree(&self, v: NodeId) -> Option<usize> {
        match self.arena.degree_of(v) {
            Some(d) => Some(d),
            None => self.degree_hints.get(&v).copied(),
        }
    }

    /// Records that `v` has degree `degree` without a cached neighborhood —
    /// the Section III-D "local database" entry an older crawl may have
    /// left behind. A no-op when the full response is already cached.
    pub fn remember_degree(&mut self, v: NodeId, degree: usize) {
        if !self.arena.contains(v) {
            self.degree_hints.insert(v, degree);
        }
    }

    /// Cached neighbor list of `v`, borrowed from the arena (free).
    #[inline]
    pub fn neighbors_of(&self, v: NodeId) -> Option<&[NodeId]> {
        self.arena.neighbors_of(v)
    }

    /// Cached profile of `v`, borrowed from the arena (free).
    #[inline]
    pub fn profile_of(&self, v: NodeId) -> Option<&UserProfile> {
        self.arena.profile_of(v)
    }

    /// Cached response for `v`, if any, materialized from the arena
    /// (free of queries, but allocates; prefer
    /// [`CachedClient::neighbors_of`] on hot paths).
    pub fn cached(&self, v: NodeId) -> Option<QueryResponse> {
        Some(QueryResponse {
            user: v,
            neighbors: self.arena.neighbors_of(v)?.to_vec(),
            profile: self.arena.profile_of(v)?.clone(),
        })
    }

    /// Nodes whose neighborhoods are known, ascending id.
    pub fn cached_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.arena.nodes()
    }

    /// Read access to the flat neighborhood store.
    pub fn arena(&self) -> &NeighborArena {
        &self.arena
    }

    /// Exports everything learned so far (see [`CacheSnapshot`]).
    /// Responses are built straight from the arena spans — no
    /// intermediate response clone.
    pub fn export_snapshot(&self) -> CacheSnapshot {
        let responses: Vec<QueryResponse> = self
            .arena
            .nodes()
            .map(|v| QueryResponse {
                user: v,
                neighbors: self.arena.neighbors_of(v).expect("enumerated node").to_vec(),
                profile: self.arena.profile_of(v).expect("enumerated node").clone(),
            })
            .collect();
        let mut degree_hints: Vec<(NodeId, usize)> =
            self.degree_hints.iter().map(|(&v, &d)| (v, d)).collect();
        degree_hints.sort_unstable_by_key(|&(v, _)| v);
        CacheSnapshot {
            responses,
            degree_hints,
            unique_queries: self.unique_queries,
            total_lookups: self.total_lookups,
            transient_retries: self.transient_retries,
        }
    }

    /// Imports the cache *contents* (responses and degree hints) of a
    /// snapshot. Counters are untouched: a warm-started client begins with
    /// the knowledge paid for by an earlier run but its own bill at zero.
    /// Use [`CachedClient::restore_counters`] to also resume the bill.
    pub fn import_entries(&mut self, snapshot: &CacheSnapshot) {
        for r in &snapshot.responses {
            self.arena.insert(r.user, &r.neighbors, r.profile.clone());
        }
        for &(v, d) in &snapshot.degree_hints {
            self.remember_degree(v, d);
        }
    }

    /// Restores the cost counters of a snapshot — the session-resume path,
    /// where the client must account as if the original run had never
    /// stopped.
    pub fn restore_counters(&mut self, snapshot: &CacheSnapshot) {
        self.unique_queries = snapshot.unique_queries;
        self.total_lookups = snapshot.total_lookups;
        self.transient_retries = snapshot.transient_retries;
    }

    /// Access to the wrapped interface.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Total user count hint from the provider.
    pub fn num_users_hint(&self) -> Option<usize> {
        self.inner.num_users_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{OsnService, OsnServiceConfig};
    use mto_graph::generators::paper_barbell;

    fn client() -> CachedClient<OsnService> {
        CachedClient::new(OsnService::with_defaults(&paper_barbell()))
    }

    #[test]
    fn duplicate_queries_are_free() {
        let mut c = client();
        c.query(NodeId(0)).unwrap();
        c.query(NodeId(0)).unwrap();
        c.query(NodeId(0)).unwrap();
        assert_eq!(c.unique_queries(), 1);
        assert_eq!(c.total_lookups(), 3);
        assert_eq!(c.inner().requests_served(), 1, "backend saw one request");
    }

    #[test]
    fn distinct_queries_each_cost_one() {
        let mut c = client();
        for v in [0u32, 1, 2, 1, 0, 3] {
            c.query(NodeId(v)).unwrap();
        }
        assert_eq!(c.unique_queries(), 4);
        assert_eq!(c.num_cached(), 4);
    }

    #[test]
    fn known_degree_only_after_query() {
        let mut c = client();
        assert_eq!(c.known_degree(NodeId(5)), None);
        c.query(NodeId(5)).unwrap();
        assert_eq!(c.known_degree(NodeId(5)), Some(10));
        assert!(c.is_cached(NodeId(5)));
        assert!(!c.is_cached(NodeId(6)));
    }

    #[test]
    fn cached_returns_without_cost() {
        let mut c = client();
        assert!(c.cached(NodeId(1)).is_none());
        c.query(NodeId(1)).unwrap();
        let before = c.unique_queries();
        let r = c.cached(NodeId(1)).expect("cached");
        assert_eq!(r.user, NodeId(1));
        assert_eq!(c.unique_queries(), before);
    }

    #[test]
    fn borrowing_accessors_match_the_owned_response() {
        let mut c = client();
        let owned = c.query(NodeId(3)).unwrap();
        assert_eq!(c.neighbors_of(NodeId(3)).unwrap(), owned.neighbors.as_slice());
        assert_eq!(c.profile_of(NodeId(3)).unwrap(), &owned.profile);
        assert_eq!(c.query_degree(NodeId(3)).unwrap(), owned.degree());
        assert_eq!(c.query_neighbors(NodeId(3)).unwrap(), owned.neighbors.as_slice());
        assert_eq!(c.neighbors_of(NodeId(4)), None, "unqueried node stays unknown");
    }

    #[test]
    fn query_shapes_share_one_lookup_accounting() {
        let mut c = client();
        c.query(NodeId(0)).unwrap();
        c.query_neighbors(NodeId(0)).unwrap();
        c.query_degree(NodeId(0)).unwrap();
        c.query_degree(NodeId(1)).unwrap();
        assert_eq!(c.unique_queries(), 2);
        assert_eq!(c.total_lookups(), 4, "each accessor shape bills one lookup");
    }

    #[test]
    fn unknown_user_error_propagates() {
        let mut c = client();
        assert!(c.query(NodeId(404)).is_err());
        // Failed queries are not cached.
        assert!(!c.is_cached(NodeId(404)));
    }

    #[test]
    fn transient_failures_are_retried() {
        let g = paper_barbell();
        let svc = OsnService::new(
            &g,
            OsnServiceConfig { transient_failure_rate: 0.4, ..Default::default() },
        );
        let mut c = CachedClient::new(svc);
        // All queries must eventually succeed despite 40% failure rate.
        for v in 0..22u32 {
            c.query(NodeId(v)).unwrap();
        }
        assert_eq!(c.unique_queries(), 22);
        assert!(c.transient_retries() > 0, "expected some retries at 40% failure rate");
    }

    #[test]
    fn cached_nodes_enumerates_history() {
        let mut c = client();
        c.query(NodeId(7)).unwrap();
        c.query(NodeId(2)).unwrap();
        let nodes: Vec<u32> = c.cached_nodes().map(|n| n.0).collect();
        assert_eq!(nodes, vec![2, 7], "span table yields ascending ids");
    }

    #[test]
    fn out_of_order_inserts_grow_the_slot_map() {
        let mut c = client();
        c.query(NodeId(21)).unwrap();
        c.query(NodeId(0)).unwrap();
        assert_eq!(c.num_cached(), 2);
        assert!(c.is_cached(NodeId(21)) && c.is_cached(NodeId(0)));
        assert!(!c.is_cached(NodeId(10)), "hole in the span table stays empty");
    }

    #[test]
    fn arena_reinsert_in_place_and_append() {
        let mut arena = NeighborArena::new();
        let p = UserProfile { age: 30, self_description_len: 0, num_posts: 0, is_public: true };
        arena.insert(NodeId(0), &[NodeId(1), NodeId(2), NodeId(3)], p.clone());
        let base = arena.data_len();
        // Shorter replacement reuses the span: no arena growth.
        arena.insert(NodeId(0), &[NodeId(4)], p.clone());
        assert_eq!(arena.neighbors_of(NodeId(0)).unwrap(), &[NodeId(4)]);
        assert_eq!(arena.data_len(), base, "in-place overwrite does not grow the arena");
        assert_eq!(arena.len(), 1);
        // Longer replacement appends; the old span is leaked but visible.
        arena.insert(NodeId(0), &[NodeId(5); 7], p);
        assert_eq!(arena.neighbors_of(NodeId(0)).unwrap().len(), 7);
        assert_eq!(arena.data_len(), base + 7);
        assert_eq!(arena.len(), 1, "still one cached node");
    }

    #[test]
    fn degree_hints_answer_without_a_cached_neighborhood() {
        let mut c = client();
        c.remember_degree(NodeId(4), 9);
        assert_eq!(c.known_degree(NodeId(4)), Some(9));
        assert!(!c.is_cached(NodeId(4)), "a hint is not a cached response");
        // The real response supersedes the hint.
        c.query(NodeId(4)).unwrap();
        assert_eq!(c.known_degree(NodeId(4)), Some(10));
        // Hints never overwrite a cached response.
        c.remember_degree(NodeId(4), 1);
        assert_eq!(c.known_degree(NodeId(4)), Some(10));
    }

    #[test]
    fn snapshot_round_trips_through_a_fresh_client() {
        let mut a = client();
        for v in [3u32, 0, 9, 15] {
            a.query(NodeId(v)).unwrap();
        }
        a.remember_degree(NodeId(20), 11);
        let snap = a.export_snapshot();
        assert_eq!(snap.responses.len(), 4);
        assert_eq!(snap.unique_queries, 4);

        let mut b = client();
        b.import_entries(&snap);
        b.restore_counters(&snap);
        assert_eq!(b.export_snapshot(), snap, "import → export is the identity");
    }

    #[test]
    fn warm_started_client_pays_nothing_for_imported_nodes() {
        let mut a = client();
        for v in 0..22u32 {
            a.query(NodeId(v)).unwrap();
        }
        let snap = a.export_snapshot();

        let mut warm = client();
        warm.import_entries(&snap);
        assert_eq!(warm.unique_queries(), 0, "warm start begins with a zero bill");
        warm.query(NodeId(11)).unwrap();
        assert_eq!(warm.unique_queries(), 0, "imported node is a cache hit");
        assert_eq!(warm.inner().requests_served(), 0, "backend never touched");
    }
}
