//! Property suite for the `mto-trace/v2` codec (ISSUE 8, satellite 3):
//!
//! * **round-trip**: any sink-produced record stream — span nests with
//!   ids and parent links, points, gossip edges, even underflowing
//!   exits — encodes and decodes back to the identical records;
//! * **truncation**: every strict prefix of a document that cuts into
//!   the trailer or body is rejected, never mis-decoded;
//! * **corruption**: flipping any single byte of the body is detected
//!   (checksum mismatch, or a record/header error when the flip lands
//!   in structure).

use proptest::collection::vec;
use proptest::prelude::*;

use mto_obs::{decode_trace, encode_trace, TraceCodecError, TraceSink};

const NAMES: [&str; 4] = ["epoch-0", "job-a", "ledger-pool", "walk step"];
const JOBS: [&str; 3] = ["job-a", "job-b", "job-c"];

/// One sink operation: `(kind % 4, name selector, value)`.
fn op_strategy() -> impl Strategy<Value = (u8, u8, u64)> {
    (0u8..4, 0u8..12, 0u64..1u64 << 48)
}

fn build(ops: &[(u8, u8, u64)]) -> TraceSink {
    let mut sink = TraceSink::new();
    for &(kind, name, value) in ops {
        let t_us = value % 1_000_000_007;
        match kind {
            0 => {
                sink.enter(t_us, NAMES[name as usize % NAMES.len()]);
            }
            1 => sink.exit(t_us, value),
            2 => sink.point(t_us, NAMES[name as usize % NAMES.len()], value),
            _ => sink.gossip(
                t_us,
                JOBS[name as usize % JOBS.len()],
                JOBS[(name as usize + 1) % JOBS.len()],
                value,
            ),
        }
    }
    sink
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_is_the_identity_on_sink_streams(ops in vec(op_strategy(), 0..60)) {
        let sink = build(&ops);
        let text = encode_trace(&sink);
        prop_assert!(text.starts_with("mto-trace v2\n"));
        let decoded = decode_trace(&text).expect("sink output must decode");
        prop_assert_eq!(decoded.as_slice(), sink.events());
        // Encoding is deterministic: same records, same bytes.
        prop_assert_eq!(encode_trace(&sink), text);
    }

    #[test]
    fn every_truncation_is_rejected(ops in vec(op_strategy(), 1..40), cut in 0usize..200) {
        let sink = build(&ops);
        let text = encode_trace(&sink);
        // Cut somewhere strictly inside the document.
        let cut = cut % text.len().max(1);
        if cut == 0 {
            return Ok(());
        }
        prop_assert!(text.is_ascii(), "the codec emits ASCII for these names");
        let torn = &text[..cut];
        prop_assert!(
            decode_trace(torn).is_err(),
            "prefix of {} bytes decoded: {torn:?}",
            torn.len()
        );
    }

    #[test]
    fn every_single_byte_flip_is_detected(ops in vec(op_strategy(), 1..30), pos in 0usize..4096) {
        let sink = build(&ops);
        let text = encode_trace(&sink);
        let mut bytes = text.clone().into_bytes();
        let pos = pos % bytes.len();
        // Flip within printable ASCII so the result stays a str.
        bytes[pos] = if bytes[pos] == b'x' { b'y' } else { b'x' };
        let corrupted = String::from_utf8(bytes).expect("printable flip");
        if corrupted == text {
            return Ok(());
        }
        let result = decode_trace(&corrupted);
        prop_assert!(result.is_err(), "corrupt byte {pos} decoded anyway");
        // A flip in the body is a checksum mismatch; a flip inside the
        // trailer is a mismatch or a bad literal — never silence.
        if let Err(TraceCodecError::ChecksumMismatch { computed, stored }) = result {
            prop_assert!(computed != stored);
        }
    }

    #[test]
    fn underflowing_streams_still_round_trip(
        exits in 1usize..5,
        ops in vec(op_strategy(), 0..20),
    ) {
        // Lead with bare exits: they must be counted, not recorded, and
        // the recorded remainder must still round-trip.
        let mut sink = TraceSink::new();
        for _ in 0..exits {
            sink.exit(0, 7);
        }
        prop_assert_eq!(sink.underflows(), exits as u64);
        for &(kind, name, value) in &ops {
            match kind {
                0 => { sink.enter(0, NAMES[name as usize % NAMES.len()]); }
                1 => sink.exit(0, value),
                2 => sink.point(0, NAMES[name as usize % NAMES.len()], value),
                _ => sink.gossip(0, "job-a", "job-b", value),
            }
        }
        let decoded = decode_trace(&encode_trace(&sink)).expect("underflow never poisons");
        prop_assert_eq!(decoded.as_slice(), sink.events());
    }
}
