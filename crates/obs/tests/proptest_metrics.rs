//! Property suite for the metrics merge algebra (ISSUE 7, satellite 3):
//!
//! * `MetricsRegistry::merge` is **associative** and **commutative** —
//!   the exact property the fleet leans on when it folds per-shard
//!   registries at an epoch barrier in a configured merge order;
//! * histogram **bucket counts are invariant** across merge order and
//!   across how the same value stream is partitioned into W per-shard
//!   registries — the metrics analogue of "results bit-identical across
//!   shard counts";
//! * rendered summaries (the byte-level witness) are identical whenever
//!   the underlying registries are.

use proptest::collection::vec;
use proptest::prelude::*;

use mto_obs::{Histogram, MetricsRegistry};

const COUNTERS: [&str; 3] = ["walk-steps", "cache-lookups", "mh-rejections"];
const GAUGES: [&str; 2] = ["arena-bytes", "in-flight"];
const HISTS: [&str; 2] = ["queue-wait-us", "scan-len"];

/// One proptest-generated metric operation:
/// `(kind % 3, name selector, value)`.
fn op_strategy() -> impl Strategy<Value = (u8, u8, u64)> {
    (0u8..3, 0u8..6, 0u64..1u64 << 48)
}

fn apply(registry: &mut MetricsRegistry, &(kind, name, value): &(u8, u8, u64)) {
    match kind {
        0 => registry.inc(COUNTERS[name as usize % COUNTERS.len()], value),
        1 => registry.gauge_max(GAUGES[name as usize % GAUGES.len()], value),
        _ => registry.observe(HISTS[name as usize % HISTS.len()], value),
    }
}

fn build(ops: &[(u8, u8, u64)]) -> MetricsRegistry {
    let mut registry = MetricsRegistry::new();
    for op in ops {
        apply(&mut registry, op);
    }
    registry
}

fn merged(a: &MetricsRegistry, b: &MetricsRegistry) -> MetricsRegistry {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(
        ops_a in vec(op_strategy(), 0..40),
        ops_b in vec(op_strategy(), 0..40),
    ) {
        let (a, b) = (build(&ops_a), build(&ops_b));
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.render("metrics "), ba.render("metrics "));
    }

    #[test]
    fn merge_is_associative(
        ops_a in vec(op_strategy(), 0..30),
        ops_b in vec(op_strategy(), 0..30),
        ops_c in vec(op_strategy(), 0..30),
    ) {
        let (a, b, c) = (build(&ops_a), build(&ops_b), build(&ops_c));
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.render("metrics "), right.render("metrics "));
    }

    #[test]
    fn histogram_buckets_are_invariant_across_partitioning_and_w(
        values in vec(0u64..1u64 << 52, 1..120),
        w in 1usize..8,
    ) {
        // One reference histogram fed the whole stream…
        let mut reference = Histogram::new();
        for &v in &values {
            reference.record(v);
        }
        // …versus W per-shard histograms fed round-robin, folded in
        // forward and reverse merge order (the fleet's two orders).
        let mut shards = vec![Histogram::new(); w];
        for (i, &v) in values.iter().enumerate() {
            shards[i % w].record(v);
        }
        let mut forward = Histogram::new();
        for shard in &shards {
            forward.merge(shard);
        }
        let mut reverse = Histogram::new();
        for shard in shards.iter().rev() {
            reverse.merge(shard);
        }
        prop_assert_eq!(&forward, &reference);
        prop_assert_eq!(&reverse, &reference);
        for i in 0..65 {
            prop_assert_eq!(forward.bucket(i), reference.bucket(i));
        }
        // The derived summary integers are therefore identical too.
        prop_assert_eq!(
            (forward.p50(), forward.p90(), forward.p99(), forward.max()),
            (reference.p50(), reference.p90(), reference.p99(), reference.max())
        );
    }

    #[test]
    fn quantiles_bound_the_true_order_statistics(values in vec(0u64..1u64 << 40, 1..80)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for (num, den) in [(1u64, 2u64), (9, 10), (99, 100)] {
            let rank = ((sorted.len() as u64 * num).div_ceil(den)).max(1) as usize;
            let truth = sorted[rank - 1];
            let reported = h.quantile(num, den);
            // The report is the bucket's upper bound clamped to the max:
            // never below the true order statistic, at most 2x above it.
            prop_assert!(reported >= truth);
            prop_assert!(reported <= truth.saturating_mul(2).max(truth));
        }
    }
}
