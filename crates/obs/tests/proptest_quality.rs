//! Property suite for the estimator-quality plane (PR 10, satellite 4).
//!
//! The contracts under test:
//!
//! * [`ChainMoments::merge`] and [`RhatAccumulator::merge`] are exact:
//!   merging per-chunk moments is bit-equivalent in count and
//!   f64-equal in the derived figures to pushing the whole series into
//!   one accumulator — associative, commutative, and invariant under
//!   how the series was partitioned (the fleet's "fold at epoch
//!   barriers like history gossip" story);
//! * [`QualityAccumulator::merge`] over disjoint job sets is invariant
//!   under the shard partition and the fold order — the coordinator's
//!   W-invariance reduced to its algebraic core;
//! * the streaming [`EssEstimator`] matches a from-scratch batch
//!   recomputation ([`ess_batch`]) bit for bit at every prefix length —
//!   the O(1)-memory stream drops nothing the offline estimate keeps.

use proptest::collection::vec;
use proptest::prelude::*;

use mto_obs::quality::{
    ess_batch, ChainMoments, EssEstimator, QualityAccumulator, RhatAccumulator,
};

/// Splits `series` into chunks at the given fractional cut points.
fn chunked(series: &[u64], cuts: &[usize]) -> Vec<Vec<u64>> {
    let mut bounds: Vec<usize> =
        cuts.iter().map(|&c| if series.is_empty() { 0 } else { c % (series.len() + 1) }).collect();
    bounds.push(0);
    bounds.push(series.len());
    bounds.sort_unstable();
    bounds.windows(2).map(|w| series[w[0]..w[1]].to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn chain_moments_merge_is_partition_invariant(
        series in vec(0u64..5_000, 0..300),
        cuts in vec(any::<usize>(), 0..6),
    ) {
        let mut whole = ChainMoments::new();
        for &x in &series {
            whole.push(x);
        }
        let chunks = chunked(&series, &cuts);
        // Forward fold.
        let mut forward = ChainMoments::new();
        for chunk in &chunks {
            let mut part = ChainMoments::new();
            for &x in chunk {
                part.push(x);
            }
            forward.merge(&part);
        }
        // Reverse fold: commutativity on top of associativity.
        let mut reverse = ChainMoments::new();
        for chunk in chunks.iter().rev() {
            let mut part = ChainMoments::new();
            for &x in chunk {
                part.push(x);
            }
            reverse.merge(&part);
        }
        for folded in [&forward, &reverse] {
            prop_assert_eq!(folded.count(), whole.count());
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
            prop_assert!(close(folded.mean(), whole.mean()),
                "mean {} vs {}", folded.mean(), whole.mean());
            prop_assert!(close(folded.variance(), whole.variance()),
                "variance {} vs {}", folded.variance(), whole.variance());
        }
    }

    #[test]
    fn rhat_merge_matches_the_unsharded_accumulator(
        chains in vec((0u64..4_000, vec(0u64..4_000, 1..60)), 2..6),
        order in any::<bool>(),
    ) {
        // One accumulator fed every chain directly...
        let mut whole = RhatAccumulator::new();
        for (c, (offset, series)) in chains.iter().enumerate() {
            for &x in series {
                whole.push(&format!("job-{c}"), x + offset);
            }
        }
        // ...versus per-chain accumulators merged in either order, as W
        // shard accumulators would be at a fleet epoch barrier.
        let mut parts: Vec<RhatAccumulator> = chains
            .iter()
            .enumerate()
            .map(|(c, (offset, series))| {
                let mut acc = RhatAccumulator::new();
                for &x in series {
                    acc.push(&format!("job-{c}"), x + offset);
                }
                acc
            })
            .collect();
        if order {
            parts.reverse();
        }
        let mut folded = RhatAccumulator::new();
        for part in &parts {
            folded.merge(part);
        }
        prop_assert_eq!(folded.num_chains(), whole.num_chains());
        match (folded.rhat(), whole.rhat()) {
            (Some(a), Some(b)) => prop_assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0), "rhat {a} vs {b}"
            ),
            (a, b) => prop_assert_eq!(a.is_some(), b.is_some(), "{:?} vs {:?}", a, b),
        }
    }

    #[test]
    fn quality_accumulator_fold_is_shard_partition_invariant(
        jobs in vec((vec(0u64..3_000, 0..120), any::<bool>(), 1u64..200), 1..6),
        shards in 1usize..5,
        order in any::<bool>(),
    ) {
        // Roughly half the jobs declare an `ess=` SLO target.
        let jobs: Vec<(Vec<u64>, Option<u64>)> = jobs
            .into_iter()
            .map(|(series, slo, target)| (series, slo.then_some(target)))
            .collect();
        // The unsharded reference: every job observed on one accumulator.
        let mut whole = QualityAccumulator::new();
        for (j, (series, target)) in jobs.iter().enumerate() {
            let id = format!("job-{j}");
            whole.register(&id, *target);
            whole.observe(&id, series);
        }
        // The fleet shape: jobs dealt round-robin onto `shards` disjoint
        // accumulators, folded in either order.
        let mut parts: Vec<QualityAccumulator> =
            (0..shards).map(|_| QualityAccumulator::new()).collect();
        for (j, (series, target)) in jobs.iter().enumerate() {
            let id = format!("job-{j}");
            let part = &mut parts[j % shards];
            part.register(&id, *target);
            part.observe(&id, series);
        }
        if order {
            parts.reverse();
        }
        let mut folded = QualityAccumulator::new();
        for part in &parts {
            folded.merge(part);
        }
        // Job states are moved wholesale by the disjoint-union merge, so
        // the derived report is exactly equal — not merely close.
        prop_assert_eq!(folded.report(), whole.report());
        prop_assert_eq!(folded, whole);
    }

    #[test]
    fn streaming_ess_matches_batch_recomputation_at_every_prefix(
        series in vec(0u64..10_000, 0..400),
    ) {
        let mut stream = EssEstimator::new();
        for (n, &x) in series.iter().enumerate() {
            stream.push(x);
            let offline = ess_batch(&series[..=n]);
            let online = stream.ess();
            // Bit-identical, not approximately equal: the streaming
            // estimator is the same arithmetic in the same order.
            prop_assert_eq!(
                online.to_bits(), offline.to_bits(),
                "prefix {}: stream {} vs batch {}", n + 1, online, offline
            );
        }
    }
}
