//! Golden-fixture compatibility test (ISSUE 8, satellite 3): the v2
//! decoder must keep reading committed `mto-trace/v1` documents exactly
//! as PR 7 wrote them, reconstructing the causal structure (span ids,
//! parent links) v1 never serialized.

use mto_obs::{decode_trace, encode_trace, TraceRecord, TraceSink, NO_SPAN};

const GOLDEN: &str = include_str!("fixtures/golden_v1.trace");

#[test]
fn committed_v1_fixture_decodes_under_the_v2_reader() {
    let records = decode_trace(GOLDEN).expect("the committed fixture must stay decodable");
    assert_eq!(records.len(), 10);

    // Span ids and parents are reconstructed from the stack discipline:
    // epoch-0 is span 1 at top level, the two job spans nest under it.
    assert_eq!(
        records[0],
        TraceRecord::Enter { seq: 0, t_us: 0, span: 1, parent: NO_SPAN, name: "epoch-0".into() }
    );
    assert_eq!(
        records[3],
        TraceRecord::Enter { seq: 3, t_us: 0, span: 2, parent: 1, name: "job-a".into() }
    );
    assert_eq!(records[4], TraceRecord::Exit { seq: 4, t_us: 0, span: 2, cost: 64 });
    assert_eq!(
        records[5],
        TraceRecord::Enter { seq: 5, t_us: 0, span: 3, parent: 1, name: "job-b".into() }
    );
    assert_eq!(records[7], TraceRecord::Exit { seq: 7, t_us: 0, span: 1, cost: 0 });
    // Points inherit the innermost open span — or NO_SPAN at top level.
    assert_eq!(records[1].span(), 1);
    assert_eq!(records[8].span(), NO_SPAN);

    // The decoded stream is exactly what a v2 sink produces for the
    // same calls — so every analysis tool treats v1 and v2 captures of
    // one run identically.
    let mut sink = TraceSink::new();
    sink.enter(0, "epoch-0");
    sink.point(0, "ledger-pool", 320);
    sink.point(0, "grant-a", 64);
    sink.enter(0, "job-a");
    sink.exit(0, 64);
    sink.enter(0, "job-b");
    sink.exit(0, 32);
    sink.exit(0, 0);
    sink.point(1_000_000, "finish-a", 400);
    sink.point(2_000_000, "job-finished:b", 200);
    assert_eq!(records, sink.events());

    // Re-encoding upgrades the document to v2 bytes that round-trip.
    let upgraded = encode_trace(&sink);
    assert!(upgraded.starts_with("mto-trace v2\n"));
    assert_eq!(decode_trace(&upgraded).unwrap(), records);
}

#[test]
fn the_fixture_is_bitwise_what_the_v1_encoder_wrote() {
    // Guard the fixture itself: v1 layout, declared count, sealed
    // checksum, no trailing newline. If someone "helpfully" reformats
    // it, this fails before the compatibility claim silently weakens.
    assert!(GOLDEN.starts_with("mto-trace v1\nevents 10\n"));
    assert!(!GOLDEN.ends_with('\n'));
    let body_end = GOLDEN.rfind("checksum ").unwrap();
    let body = &GOLDEN[..body_end];
    let stored = u64::from_str_radix(&GOLDEN[body_end + "checksum ".len()..], 16).unwrap();
    assert_eq!(mto_obs::fnv1a64(body.as_bytes()), stored);
}
