//! The committed metrics baseline: `OBS_BASELINE.json`.
//!
//! The fleet's `metric` report lines are shard-invariant by contract —
//! the same figures at every `W`. This module pins them to a committed
//! ledger (same sorted-key hand-rolled JSON style as the
//! `mto-bench::ledger` perf ledger) so CI fails when a change drifts a
//! deterministic figure (unique queries, cache hit rate, gossip
//! adoption) outside its declared tolerance, instead of the drift
//! sailing through unnoticed:
//!
//! ```json
//! {
//!   "schema": "mto-obs-baseline/v1",
//!   "request": "obs-smoke reference fleet (gnp-200 ...)",
//!   "metrics": {
//!     "cache-hit-rate-bp": {"tolerance-pct": 0, "value": 9180},
//!     "unique-queries": {"tolerance-pct": 0, "value": 200}
//!   }
//! }
//! ```
//!
//! Percentages in report lines (`91.80%`) are pinned in basis points
//! under a `-bp` key suffix so the whole ledger stays integer-exact.
//! The parser is a minimal strict reader for exactly this shape (the
//! workspace vendors no JSON crate).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The schema tag written and required on read.
pub const BASELINE_SCHEMA: &str = "mto-obs-baseline/v1";

/// One pinned metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Pinned value (basis points for `-bp` keys).
    pub value: u64,
    /// Allowed relative drift, percent of the pinned value. 0 = exact —
    /// the right default for figures under the determinism contract.
    pub tolerance_pct: u64,
}

/// The committed baseline ledger.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Provenance: the request the figures were measured on.
    pub request: String,
    /// Pinned metrics, sorted by name.
    pub metrics: BTreeMap<String, BaselineEntry>,
}

/// One metric outside its tolerance (or missing from the report).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Drift {
    /// Metric name.
    pub metric: String,
    /// Pinned value.
    pub expected: u64,
    /// Observed value (`None`: the report has no such metric line).
    pub actual: Option<u64>,
    /// The declared tolerance.
    pub tolerance_pct: u64,
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.actual {
            Some(a) => write!(
                f,
                "drift metric={} expected={} actual={} tolerance-pct={}",
                self.metric, self.expected, a, self.tolerance_pct
            ),
            None => write!(
                f,
                "drift metric={} expected={} actual=(missing) tolerance-pct={}",
                self.metric, self.expected, self.tolerance_pct
            ),
        }
    }
}

impl Baseline {
    /// Renders the ledger as its deterministic JSON document.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(128 + 64 * self.metrics.len());
        out.push_str("{\n");
        writeln!(out, "  \"schema\": \"{BASELINE_SCHEMA}\",").expect("string write");
        writeln!(out, "  \"request\": \"{}\",", escape(&self.request)).expect("string write");
        out.push_str("  \"metrics\": {\n");
        let last = self.metrics.len().saturating_sub(1);
        for (i, (name, e)) in self.metrics.iter().enumerate() {
            write!(
                out,
                "    \"{}\": {{\"tolerance-pct\": {}, \"value\": {}}}",
                escape(name),
                e.tolerance_pct,
                e.value
            )
            .expect("string write");
            out.push_str(if i == last { "\n" } else { ",\n" });
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses a baseline document. Strict: exactly the shape
    /// [`Baseline::render`] emits (whitespace-insensitive), with the
    /// schema tag required.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let mut schema = None;
        let mut request = None;
        let mut metrics = BTreeMap::new();
        p.expect(b'{')?;
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "schema" => schema = Some(p.string()?),
                "request" => request = Some(p.string()?),
                "metrics" => {
                    p.expect(b'{')?;
                    if !p.try_expect(b'}') {
                        loop {
                            let name = p.string()?;
                            p.expect(b':')?;
                            p.expect(b'{')?;
                            let mut value = None;
                            let mut tolerance = None;
                            loop {
                                let field = p.string()?;
                                p.expect(b':')?;
                                let n = p.number()?;
                                match field.as_str() {
                                    "value" => value = Some(n),
                                    "tolerance-pct" => tolerance = Some(n),
                                    other => return Err(format!("unknown metric field {other:?}")),
                                }
                                if !p.try_expect(b',') {
                                    break;
                                }
                            }
                            p.expect(b'}')?;
                            let value = value.ok_or(format!("metric {name:?} missing value"))?;
                            metrics.insert(
                                name,
                                BaselineEntry { value, tolerance_pct: tolerance.unwrap_or(0) },
                            );
                            if !p.try_expect(b',') {
                                break;
                            }
                        }
                        p.expect(b'}')?;
                    }
                }
                other => return Err(format!("unknown baseline field {other:?}")),
            }
            if !p.try_expect(b',') {
                break;
            }
        }
        p.expect(b'}')?;
        p.end()?;
        match schema.as_deref() {
            Some(BASELINE_SCHEMA) => {}
            Some(other) => return Err(format!("unknown schema {other:?}")),
            None => return Err("missing schema field".to_string()),
        }
        Ok(Baseline { request: request.unwrap_or_default(), metrics })
    }

    /// Compares the baseline against observed figures, returning every
    /// metric outside its tolerance. Empty result: the gate passes.
    /// Metrics present in `actual` but not pinned are ignored (adding a
    /// new metric line is not a regression).
    pub fn compare(&self, actual: &BTreeMap<String, u64>) -> Vec<Drift> {
        let mut drifts = Vec::new();
        for (name, e) in &self.metrics {
            let drift = match actual.get(name) {
                Some(&a) => {
                    let delta = a.abs_diff(e.value);
                    // delta / expected > tolerance / 100, integer-exact.
                    delta * 100 > e.tolerance_pct * e.value
                }
                None => true,
            };
            if drift {
                drifts.push(Drift {
                    metric: name.clone(),
                    expected: e.value,
                    actual: actual.get(name).copied(),
                    tolerance_pct: e.tolerance_pct,
                });
            }
        }
        drifts
    }
}

/// Extracts the shard-invariant figures from a rendered report: every
/// `metric <name> <value>` line. Percent values (`91.80%`) become basis
/// points under `<name>-bp`.
pub fn parse_metric_lines(report: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in report.lines() {
        let Some(rest) = line.strip_prefix("metric ") else { continue };
        let Some((name, value)) = rest.rsplit_once(' ') else { continue };
        if let Some(pct) = value.strip_suffix('%') {
            if let Some((int, frac)) = pct.split_once('.') {
                if frac.len() == 2 {
                    if let (Ok(i), Ok(f)) = (int.parse::<u64>(), frac.parse::<u64>()) {
                        out.insert(format!("{name}-bp"), i * 100 + f);
                    }
                }
            } else if let Ok(i) = pct.parse::<u64>() {
                out.insert(format!("{name}-bp"), i * 100);
            }
        } else if let Ok(v) = value.parse::<u64>() {
            out.insert(name.to_string(), v);
        }
    }
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
    out
}

/// Minimal strict reader for the baseline's JSON subset: objects,
/// strings without escapes beyond `\"`/`\\`/`\n`, unsigned integers.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(&got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            Some(&got) => Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char, self.pos, got as char
            )),
            None => Err(format!("expected {:?}, found end of input", b as char)),
        }
    }

    fn try_expect(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = self.bytes.get(self.pos + 1);
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 2;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .parse()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing data at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        let mut metrics = BTreeMap::new();
        metrics.insert("unique-queries".into(), BaselineEntry { value: 200, tolerance_pct: 0 });
        metrics.insert("cache-hit-rate-bp".into(), BaselineEntry { value: 9180, tolerance_pct: 1 });
        Baseline { request: "ref \"fleet\"".into(), metrics }
    }

    #[test]
    fn render_parse_round_trip() {
        let b = sample();
        let text = b.render();
        assert!(text.contains("\"schema\": \"mto-obs-baseline/v1\""), "{text}");
        assert_eq!(Baseline::parse(&text).unwrap(), b);
        assert_eq!(b.render(), text, "render is deterministic");
    }

    #[test]
    fn parse_rejects_garbage_and_wrong_schema() {
        assert!(Baseline::parse("").is_err());
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"schema\": \"mto-obs-baseline/v9\", \"metrics\": {}}").is_err());
        let truncated = sample().render();
        assert!(Baseline::parse(&truncated[..truncated.len() - 4]).is_err());
    }

    #[test]
    fn compare_flags_exact_and_tolerated_drift() {
        let b = sample();
        let mut actual = BTreeMap::new();
        actual.insert("unique-queries".to_string(), 200u64);
        actual.insert("cache-hit-rate-bp".to_string(), 9250u64);
        actual.insert("unpinned-extra".to_string(), 1u64);
        let drifts = b.compare(&actual);
        // 9250 vs 9180 drifts 0.76%, inside the declared 1% tolerance.
        assert!(drifts.is_empty(), "{drifts:?}");

        actual.insert("cache-hit-rate-bp".to_string(), 9300u64);
        let drifts = b.compare(&actual);
        assert_eq!(drifts.len(), 1, "120 bp off on a 1% tolerance must drift");
        assert_eq!(drifts[0].metric, "cache-hit-rate-bp");

        actual.remove("unique-queries");
        let drifts = b.compare(&actual);
        assert_eq!(drifts.len(), 2, "a missing pinned metric is a drift");
        assert!(drifts.iter().any(|d| d.actual.is_none()));
        assert!(drifts[0].to_string().starts_with("drift metric="));
    }

    #[test]
    fn metric_lines_parse_including_percentages() {
        let report = "fleet shards=4\nmetric jobs 4\nmetric cache-hit-rate 91.80%\n\
                      metric whole-rate 7%\ntiming makespan-secs 3.000\nmetric odd last 12\n";
        let m = parse_metric_lines(report);
        assert_eq!(m.get("jobs"), Some(&4));
        assert_eq!(m.get("cache-hit-rate-bp"), Some(&9180));
        assert_eq!(m.get("whole-rate-bp"), Some(&700));
        assert_eq!(m.get("odd last"), Some(&12), "rsplit keeps multi-word names");
        assert!(!m.contains_key("makespan-secs"), "timing lines are never pinned");
    }
}
