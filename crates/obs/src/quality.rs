//! The estimator-quality plane: streaming convergence diagnostics over
//! each job's sample series.
//!
//! The paper's claim is statistical — MTO rewiring shrinks mixing time,
//! so walks converge in fewer steps — and this module is how the serving
//! stack *observes* that claim per request, with the same determinism
//! contract as the metric and trace planes:
//!
//! * [`ChainMoments`] — count/sum/sum-of-squares of a `u64` sample
//!   series kept as **exact integers** (`u64`/`u128`), so merging two
//!   accumulators is integer addition: associative, commutative, and
//!   therefore invariant under the fleet's barrier merge order
//!   (`proptest_quality` pins this).
//! * [`EssEstimator`] — effective sample size by the batch-means method
//!   in O(1) memory: batch *sums* stay integers and collapse pairwise
//!   (an exact operation) when the bounded batch table fills, so the
//!   streaming state after `n` pushes is bit-identical to chunking the
//!   full series at the final batch size.
//! * [`GewekeStream`] — the bounded replacement for the full-series
//!   Geweke monitor: first-window prefix plus last-window ring, with the
//!   z statistic computed by the exact summation order of
//!   `mto_core::diagnostics::geweke` on the retained window.
//! * [`RhatAccumulator`] — the cross-chain Gelman–Rubin statistic over
//!   per-job [`ChainMoments`], foldable at epoch barriers exactly like
//!   history gossip.
//! * [`QualityAccumulator`] — the per-shard bundle the coordinator
//!   folds: one [`JobQuality`] per job (a job runs whole on one shard,
//!   so shard accumulators have disjoint job sets and their union is
//!   order-invariant).
//!
//! The sample series is the **degree of each visited node** — the
//! paper's own Geweke indicator ("a commonly used one is degree that
//! applies to every graph") and a pure function of the walk, so every
//! figure derived here is byte-identical across shard counts. Floats
//! appear only in *derived* figures (ESS, z, R-hat), never in merged
//! state, and are rendered through one scaled-integer encoding
//! ([`scale_milli`]) shared by `metric` lines, trace points, and
//! `trace2mix`.

use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Maximum completed-batch table size of [`EssEstimator`]; when the
/// table fills, adjacent batches collapse pairwise and the batch size
/// doubles, so memory stays O(1) for unbounded series.
const MAX_BATCHES: usize = 64;

/// Default prefix capacity of [`GewekeStream`] (window A source).
pub const GEWEKE_FIRST_CAPACITY: usize = 8_192;

/// Default ring capacity of [`GewekeStream`] (window B source).
pub const GEWEKE_LAST_CAPACITY: usize = 32_768;

/// Leading window fraction of the Geweke statistic (paper: 0.1).
const GEWEKE_FIRST_FRACTION: f64 = 0.1;

/// Trailing window fraction of the Geweke statistic (paper: 0.5).
const GEWEKE_LAST_FRACTION: f64 = 0.5;

/// Encodes a non-negative derived figure as milli-units for `u64`
/// surfaces (trace point values, `metric` lines, baselines).
/// Non-finite values saturate to `u64::MAX` so an infinite z (constant
/// but unequal windows) stays visible instead of wrapping.
pub fn scale_milli(x: f64) -> u64 {
    if !x.is_finite() {
        return u64::MAX;
    }
    let scaled = (x * 1000.0).round();
    if scaled <= 0.0 {
        0
    } else if scaled >= u64::MAX as f64 {
        u64::MAX
    } else {
        scaled as u64
    }
}

/// Exact integer moments of a `u64` sample series.
///
/// The merge is plain integer addition, so it is associative and
/// commutative with **no** floating-point drift — the property that
/// makes the fleet's barrier fold order-invariant. Sums use `u128`:
/// even `u64::MAX`-sized samples cannot overflow within 2^64 pushes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChainMoments {
    count: u64,
    sum: u128,
    sum_sq: u128,
}

impl ChainMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        ChainMoments::default()
    }

    /// Records one sample.
    pub fn push(&mut self, x: u64) {
        self.count += 1;
        self.sum += x as u128;
        self.sum_sq += (x as u128) * (x as u128);
    }

    /// Folds `other` into `self` (exact integer addition).
    pub fn merge(&mut self, other: &ChainMoments) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Population variance `E[x²] − E[x]²` (0 when empty), derived from
    /// the integer moments so it is a pure function of the merged state.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.sum as f64 / n;
        let mean_sq = self.sum_sq as f64 / n;
        (mean_sq - mean * mean).max(0.0)
    }
}

/// Streaming batch-means effective sample size in O(1) memory.
///
/// Batches are kept as integer **sums** (never means), so the pairwise
/// collapse that doubles the batch size when the table fills is exact:
/// after `n` pushes the table holds precisely the chunk sums of the
/// series at the current batch size — what [`ess_batch`] recomputes
/// from the full series, and what `proptest_quality` pins as
/// bit-identical.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EssEstimator {
    moments: ChainMoments,
    batch_size: u64,
    batch_sums: Vec<u128>,
    current_sum: u128,
    current_count: u64,
}

impl EssEstimator {
    /// An empty estimator (batch size starts at 1).
    pub fn new() -> Self {
        EssEstimator { batch_size: 1, ..EssEstimator::default() }
    }

    /// Records one sample.
    pub fn push(&mut self, x: u64) {
        self.moments.push(x);
        self.current_sum += x as u128;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batch_sums.push(self.current_sum);
            self.current_sum = 0;
            self.current_count = 0;
            if self.batch_sums.len() == MAX_BATCHES {
                // Exact pairwise collapse: integer sums of adjacent
                // batches add into sums of double-size batches.
                for i in 0..MAX_BATCHES / 2 {
                    self.batch_sums[i] = self.batch_sums[2 * i] + self.batch_sums[2 * i + 1];
                }
                self.batch_sums.truncate(MAX_BATCHES / 2);
                self.batch_size *= 2;
            }
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// The overall integer moments (shared with the R-hat chains).
    pub fn moments(&self) -> &ChainMoments {
        &self.moments
    }

    /// Current batch size (a power of two).
    pub fn batch_size(&self) -> u64 {
        self.batch_size
    }

    /// The effective sample size estimate. With fewer than two complete
    /// batches (or a constant series) autocorrelation cannot be
    /// estimated and the series counts at face value (`ESS = n`, the
    /// i.i.d. limit); the estimate is clamped to `[0, n]`.
    pub fn ess(&self) -> f64 {
        ess_from_parts(&self.moments, self.batch_size, &self.batch_sums)
    }
}

/// The shared final step of the batch-means estimate: ESS from overall
/// moments plus the completed-batch sums at `batch_size`. Both the
/// streaming estimator and the [`ess_batch`] reference call this, so
/// "streaming equals batch recomputation" reduces to the integer batch
/// state being identical — which the collapse rule guarantees.
fn ess_from_parts(moments: &ChainMoments, batch_size: u64, batch_sums: &[u128]) -> f64 {
    let n = moments.count();
    if n == 0 {
        return 0.0;
    }
    let m = batch_sums.len();
    if m < 2 {
        return n as f64;
    }
    let variance = moments.variance();
    if variance == 0.0 {
        return n as f64;
    }
    let b = batch_size as f64;
    // Batch means and their sample variance, in table order (the same
    // order every time: batches are chunks of the series).
    let grand = batch_sums.iter().map(|&s| s as f64 / b).sum::<f64>() / m as f64;
    let var_bm = batch_sums
        .iter()
        .map(|&s| {
            let d = s as f64 / b - grand;
            d * d
        })
        .sum::<f64>()
        / (m - 1) as f64;
    if var_bm == 0.0 {
        return n as f64;
    }
    // Var(x̄) ≈ var_bm · b / n ⇒ ESS = σ² / Var(x̄) = n·σ² / (b·var_bm).
    (n as f64 * variance / (b * var_bm)).min(n as f64)
}

/// Batch recomputation reference: chunk the full series at the batch
/// size the streaming schedule would have reached after `n` pushes and
/// estimate ESS from those chunk sums. Bit-identical to feeding the
/// series through [`EssEstimator`] one sample at a time.
pub fn ess_batch(series: &[u64]) -> f64 {
    let n = series.len() as u64;
    // The streaming schedule doubles the batch size whenever 64 batches
    // complete, so the final size is the smallest power of two with
    // fewer than 64 complete chunks... except exactly at the collapse
    // point, where the table was just halved.
    let mut batch_size = 1u64;
    while n / batch_size >= MAX_BATCHES as u64 {
        batch_size *= 2;
    }
    let mut moments = ChainMoments::new();
    for &x in series {
        moments.push(x);
    }
    let mut batch_sums = Vec::new();
    for chunk in series.chunks_exact(batch_size as usize) {
        batch_sums.push(chunk.iter().map(|&x| x as u128).sum::<u128>());
    }
    ess_from_parts(&moments, batch_size, &batch_sums)
}

/// Bounded Geweke window: the first [`GEWEKE_FIRST_CAPACITY`]-style
/// prefix plus a ring of the most recent samples. Unlike the
/// full-series monitor this caps memory for unbounded walks; on the
/// retained window the z statistic is computed with the exact summation
/// order of `mto_core::diagnostics::geweke::geweke_z`, so whenever the
/// whole series fits the two are bit-identical.
#[derive(Clone, Debug, PartialEq)]
pub struct GewekeStream {
    first: Vec<f64>,
    first_capacity: usize,
    last: VecDeque<f64>,
    last_capacity: usize,
    seen: u64,
}

impl Default for GewekeStream {
    fn default() -> Self {
        GewekeStream::new()
    }
}

impl GewekeStream {
    /// A stream with the default window capacities.
    pub fn new() -> Self {
        GewekeStream::with_capacity(GEWEKE_FIRST_CAPACITY, GEWEKE_LAST_CAPACITY)
    }

    /// A stream retaining the first `first_capacity` and last
    /// `last_capacity` samples. The prefix capacity must be large
    /// enough that window A (10% of the retained series) always fits:
    /// `first_capacity ≥ (first_capacity + last_capacity) / 10`.
    pub fn with_capacity(first_capacity: usize, last_capacity: usize) -> Self {
        assert!(first_capacity > 0 && last_capacity > 0, "window capacities must be positive");
        assert!(
            first_capacity
                >= ((first_capacity + last_capacity) as f64 * GEWEKE_FIRST_FRACTION).floor()
                    as usize,
            "prefix capacity too small for window A of the retained series"
        );
        GewekeStream {
            first: Vec::new(),
            first_capacity,
            last: VecDeque::new(),
            last_capacity,
            seen: 0,
        }
    }

    /// Records one sample.
    pub fn push(&mut self, x: f64) {
        self.seen += 1;
        if self.first.len() < self.first_capacity {
            self.first.push(x);
            return;
        }
        if self.last.len() == self.last_capacity {
            self.last.pop_front();
        }
        self.last.push_back(x);
    }

    /// Total samples pushed (retained or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of retained samples.
    pub fn retained_len(&self) -> usize {
        self.first.len() + self.last.len()
    }

    /// The retained window in arrival order: the kept prefix followed
    /// by the ring of most recent samples.
    pub fn retained(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.retained_len());
        out.extend_from_slice(&self.first);
        out.extend(self.last.iter().copied());
        out
    }

    /// The Geweke z statistic over the retained window: window A = the
    /// first 10%, window B = the last 50%, `z = |mean_A − mean_B| /
    /// sqrt(var_A + var_B)`. `None` while either window is empty;
    /// `Some(0.0)` / `Some(∞)` for zero-variance windows with equal /
    /// distinct means — the exact conventions of the core module.
    pub fn z(&self) -> Option<f64> {
        let n = self.retained_len();
        let a_len = (n as f64 * GEWEKE_FIRST_FRACTION).floor() as usize;
        let b_len = (n as f64 * GEWEKE_LAST_FRACTION).floor() as usize;
        if a_len == 0 || b_len == 0 {
            return None;
        }
        let retained = self.retained();
        let (mean_a, var_a) = mean_and_variance(&retained[..a_len]);
        let (mean_b, var_b) = mean_and_variance(&retained[n - b_len..]);
        let denom = (var_a + var_b).sqrt();
        let num = (mean_a - mean_b).abs();
        if denom == 0.0 {
            return Some(if num == 0.0 { 0.0 } else { f64::INFINITY });
        }
        Some(num / denom)
    }
}

/// Mean and population variance with the identical summation order of
/// `mto_core::diagnostics::geweke` (sum then divide; squared deviations
/// summed in series order) — the bit-identical-z contract depends on
/// replaying those exact float operations.
fn mean_and_variance(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var)
}

/// Cross-chain Gelman–Rubin accumulator: one [`ChainMoments`] per
/// chain, keyed by job id. Merging unions the maps and integer-adds
/// same-key moments — associative and commutative, so the fleet can
/// fold per-shard accumulators at a barrier in any configured merge
/// order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RhatAccumulator {
    chains: BTreeMap<String, ChainMoments>,
}

impl RhatAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        RhatAccumulator::default()
    }

    /// Records one sample into chain `chain`.
    pub fn push(&mut self, chain: &str, x: u64) {
        self.chains.entry(chain.to_string()).or_default().push(x);
    }

    /// Folds fully-formed chain moments into chain `chain`.
    pub fn add_chain(&mut self, chain: &str, moments: &ChainMoments) {
        self.chains.entry(chain.to_string()).or_default().merge(moments);
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &RhatAccumulator) {
        for (chain, moments) in &other.chains {
            self.chains.entry(chain.clone()).or_default().merge(moments);
        }
    }

    /// Chains recorded so far.
    pub fn num_chains(&self) -> usize {
        self.chains.len()
    }

    /// The potential-scale-reduction statistic over chains with at
    /// least two samples:
    ///
    /// ```text
    /// W  = mean of within-chain variances
    /// B̂  = sample variance of the chain means
    /// R̂  = sqrt(((n̄−1)/n̄ · W + B̂) / W)
    /// ```
    ///
    /// tending to 1 as chains agree. `None` with fewer than two usable
    /// chains; `Some(1.0)` / `Some(∞)` when every chain is constant
    /// with equal / distinct means. Iteration is in chain-name order,
    /// so the figure is a pure function of the merged state.
    pub fn rhat(&self) -> Option<f64> {
        let usable: Vec<&ChainMoments> = self.chains.values().filter(|m| m.count() >= 2).collect();
        let m = usable.len();
        if m < 2 {
            return None;
        }
        let within = usable.iter().map(|c| c.variance()).sum::<f64>() / m as f64;
        let grand = usable.iter().map(|c| c.mean()).sum::<f64>() / m as f64;
        let between = usable
            .iter()
            .map(|c| {
                let d = c.mean() - grand;
                d * d
            })
            .sum::<f64>()
            / (m - 1) as f64;
        let mean_n = usable.iter().map(|c| c.count() as f64).sum::<f64>() / m as f64;
        if within == 0.0 {
            return Some(if between == 0.0 { 1.0 } else { f64::INFINITY });
        }
        let var_plus = (mean_n - 1.0) / mean_n * within + between;
        Some((var_plus / within).sqrt())
    }
}

/// One job's quality state: the streaming ESS over its sample series,
/// the bounded Geweke window, and the declared SLO if any. A job runs
/// whole on one shard, so this state is only ever *fed* by one
/// accumulator — cross-shard folding happens at the map level
/// ([`QualityAccumulator::merge`]), where job sets are disjoint.
#[derive(Clone, Debug, PartialEq)]
pub struct JobQuality {
    ess: EssEstimator,
    geweke: GewekeStream,
    target_ess: Option<u64>,
}

impl JobQuality {
    /// Fresh state with an optional `quality ess=N` SLO.
    pub fn new(target_ess: Option<u64>) -> Self {
        JobQuality { ess: EssEstimator::new(), geweke: GewekeStream::new(), target_ess }
    }

    /// Records one sample (a visited node's degree).
    pub fn push(&mut self, x: u64) {
        self.ess.push(x);
        self.geweke.push(x as f64);
    }

    /// Samples recorded.
    pub fn samples(&self) -> u64 {
        self.ess.count()
    }

    /// Current effective sample size.
    pub fn ess(&self) -> f64 {
        self.ess.ess()
    }

    /// Current Geweke z over the retained window.
    pub fn geweke_z(&self) -> Option<f64> {
        self.geweke.z()
    }

    /// The declared ESS target, if the job carries a quality SLO.
    pub fn target_ess(&self) -> Option<u64> {
        self.target_ess
    }

    /// Whether the SLO is met: a target is declared and the current
    /// ESS estimate reaches it.
    pub fn met(&self) -> bool {
        self.target_ess.is_some_and(|t| self.ess() >= t as f64)
    }

    /// The overall chain moments (fed to the cross-chain R-hat).
    pub fn moments(&self) -> &ChainMoments {
        self.ess.moments()
    }
}

/// The per-shard quality bundle: one [`JobQuality`] per job id.
///
/// Shards own disjoint job sets, so [`QualityAccumulator::merge`] is a
/// disjoint map union — associative, commutative, and invariant under
/// how jobs were partitioned across `W` shards (`proptest_quality`).
/// Merging two accumulators that both carry the same job is a caller
/// bug and panics rather than silently corrupting the series.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QualityAccumulator {
    jobs: BTreeMap<String, JobQuality>,
}

impl QualityAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        QualityAccumulator::default()
    }

    /// Registers a job (idempotent) with its optional ESS target.
    pub fn register(&mut self, job: &str, target_ess: Option<u64>) {
        self.jobs.entry(job.to_string()).or_insert_with(|| JobQuality::new(target_ess));
    }

    /// Feeds a batch of samples to `job`'s state (registering it
    /// without an SLO if unseen).
    pub fn observe(&mut self, job: &str, samples: &[u64]) {
        let state = self.jobs.entry(job.to_string()).or_insert_with(|| JobQuality::new(None));
        for &x in samples {
            state.push(x);
        }
    }

    /// One job's state.
    pub fn job(&self, job: &str) -> Option<&JobQuality> {
        self.jobs.get(job)
    }

    /// Iterates jobs in id order.
    pub fn jobs(&self) -> impl Iterator<Item = (&str, &JobQuality)> + '_ {
        self.jobs.iter().map(|(id, q)| (id.as_str(), q))
    }

    /// Whether no job has been registered.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Folds `other` into `self`. Job sets must be disjoint (one job
    /// runs whole on one shard): a collision panics.
    pub fn merge(&mut self, other: &QualityAccumulator) {
        for (job, state) in &other.jobs {
            let previous = self.jobs.insert(job.clone(), state.clone());
            assert!(previous.is_none(), "job {job:?} split across quality accumulators");
        }
    }

    /// The cross-chain R-hat over every job's moments.
    pub fn rhat(&self) -> Option<f64> {
        let mut acc = RhatAccumulator::new();
        for (job, state) in &self.jobs {
            acc.add_chain(job, state.moments());
        }
        acc.rhat()
    }

    /// Derived figures for rendering (metric lines, prom families,
    /// trace points).
    pub fn report(&self) -> QualityReport {
        QualityReport {
            jobs: self
                .jobs
                .iter()
                .map(|(id, q)| {
                    (
                        id.clone(),
                        JobQualityFigures {
                            samples: q.samples(),
                            ess: q.ess(),
                            geweke_z: q.geweke_z(),
                            target_ess: q.target_ess(),
                            met: q.met(),
                        },
                    )
                })
                .collect(),
            rhat: self.rhat(),
        }
    }
}

/// One job's derived quality figures.
#[derive(Clone, Debug, PartialEq)]
pub struct JobQualityFigures {
    /// Samples recorded (walk steps observed).
    pub samples: u64,
    /// Effective sample size estimate.
    pub ess: f64,
    /// Geweke z over the retained window (`None` = series too short).
    pub geweke_z: Option<f64>,
    /// The declared `quality ess=N` target, if any.
    pub target_ess: Option<u64>,
    /// Whether the target is met.
    pub met: bool,
}

/// Everything the quality plane reports for one run: per-job figures in
/// job-id order plus the fleet-wide cross-chain R-hat.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QualityReport {
    /// Per-job figures, keyed by job id.
    pub jobs: BTreeMap<String, JobQualityFigures>,
    /// Cross-chain R-hat (`None` with fewer than two usable chains).
    pub rhat: Option<f64>,
}

impl QualityReport {
    /// Renders the canonical shard-invariant `metric quality-*` lines —
    /// the byte-identical-across-`W` surface CI diffs and
    /// `OBS_BASELINE.json` pins. All values are scaled integers via
    /// [`scale_milli`].
    pub fn render_metric_lines(&self, out: &mut String) {
        use std::fmt::Write as _;
        for (id, q) in &self.jobs {
            writeln!(out, "metric quality-{id}-samples {}", q.samples).expect("string write");
            writeln!(out, "metric quality-{id}-ess-mil {}", scale_milli(q.ess))
                .expect("string write");
            if let Some(z) = q.geweke_z {
                writeln!(out, "metric quality-{id}-z-mil {}", scale_milli(z))
                    .expect("string write");
            }
            if q.target_ess.is_some() {
                writeln!(out, "metric quality-{id}-met {}", u8::from(q.met)).expect("string write");
            }
        }
        if let Some(rhat) = self.rhat {
            writeln!(out, "metric quality-rhat-mil {}", scale_milli(rhat)).expect("string write");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_moments_merge_exactly() {
        let xs = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let mut whole = ChainMoments::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = ChainMoments::new();
        let mut right = ChainMoments::new();
        for &x in &xs[..3] {
            left.push(x);
        }
        for &x in &xs[3..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left, whole, "integer merge is exact, not approximately equal");
        assert_eq!(whole.count(), 8);
        assert!((whole.mean() - 3.875).abs() < 1e-12);
    }

    #[test]
    fn iid_series_has_near_full_ess() {
        // Deterministic LCG draws: effectively uncorrelated.
        let mut state = 12345u64;
        let mut est = EssEstimator::new();
        for _ in 0..4096 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            est.push((state >> 33) % 100);
        }
        let ess = est.ess();
        assert!(ess > 2048.0, "iid series should keep most of its samples: ess = {ess}");
        assert!(ess <= 4096.0, "ess is clamped to n");
    }

    #[test]
    fn sticky_series_has_low_ess() {
        // Strong positive autocorrelation: long runs of equal values.
        let mut est = EssEstimator::new();
        for i in 0..4096u64 {
            est.push((i / 512) % 2 * 50);
        }
        let ess = est.ess();
        assert!(ess < 410.0, "a sticky chain must lose most of its samples: ess = {ess}");
    }

    #[test]
    fn streaming_ess_matches_batch_recomputation() {
        let mut state = 7u64;
        let series: Vec<u64> = (0..5_000)
            .map(|_| {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                (state >> 40) % 64
            })
            .collect();
        for n in [0usize, 1, 63, 64, 65, 127, 128, 1000, 5000] {
            let mut est = EssEstimator::new();
            for &x in &series[..n] {
                est.push(x);
            }
            let streamed = est.ess();
            let batch = ess_batch(&series[..n]);
            assert_eq!(streamed.to_bits(), batch.to_bits(), "n = {n}");
        }
    }

    #[test]
    fn ess_memory_is_bounded() {
        let mut est = EssEstimator::new();
        for i in 0..1_000_000u64 {
            est.push(i % 97);
        }
        assert!(est.batch_sums.len() < MAX_BATCHES);
        assert!(est.batch_size() >= 16_384, "batch size doubles as the series grows");
    }

    #[test]
    fn geweke_stream_matches_full_series_when_everything_fits() {
        let mut stream = GewekeStream::with_capacity(64, 512);
        let mut series = Vec::new();
        let mut state = 99u64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = ((state >> 33) % 1000) as f64;
            stream.push(x);
            series.push(x);
        }
        assert_eq!(stream.retained(), series, "nothing dropped below capacity");
        // Reference: the core formula replayed locally.
        let n = series.len();
        let a = &series[..(n as f64 * 0.1).floor() as usize];
        let b = &series[n - (n as f64 * 0.5).floor() as usize..];
        let (ma, va) = mean_and_variance(a);
        let (mb, vb) = mean_and_variance(b);
        let expected = (ma - mb).abs() / (va + vb).sqrt();
        assert_eq!(stream.z().unwrap().to_bits(), expected.to_bits());
    }

    #[test]
    fn geweke_stream_drops_the_middle_not_the_ends() {
        let mut stream = GewekeStream::with_capacity(10, 20);
        for i in 0..100 {
            stream.push(i as f64);
        }
        assert_eq!(stream.seen(), 100);
        assert_eq!(stream.retained_len(), 30);
        let retained = stream.retained();
        assert_eq!(&retained[..10], &(0..10).map(f64::from).collect::<Vec<_>>()[..]);
        assert_eq!(&retained[10..], &(80..100).map(f64::from).collect::<Vec<_>>()[..]);
        assert!(stream.z().unwrap() > 1.0, "a pure trend stays visibly unconverged");
    }

    #[test]
    fn geweke_stream_edge_conventions_match_core() {
        let mut empty = GewekeStream::new();
        assert_eq!(empty.z(), None);
        empty.push(1.0);
        assert_eq!(empty.z(), None, "window A still empty below 10 samples");

        let mut constant = GewekeStream::new();
        for _ in 0..100 {
            constant.push(3.0);
        }
        assert_eq!(constant.z(), Some(0.0));

        let mut split = GewekeStream::new();
        for _ in 0..100 {
            split.push(1.0);
        }
        for _ in 0..900 {
            split.push(2.0);
        }
        assert_eq!(split.z(), Some(f64::INFINITY));
    }

    #[test]
    fn rhat_agreeing_chains_near_one_disagreeing_chains_large() {
        let mut agree = RhatAccumulator::new();
        let mut state = 5u64;
        for chain in ["a", "b", "c"] {
            for _ in 0..500 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                agree.push(chain, (state >> 33) % 100);
            }
        }
        let r = agree.rhat().unwrap();
        assert!(r < 1.1, "same-distribution chains must agree: rhat = {r}");

        let mut disagree = RhatAccumulator::new();
        for i in 0..500u64 {
            disagree.push("lo", i % 3);
            disagree.push("hi", 1000 + i % 3);
        }
        let r = disagree.rhat().unwrap();
        assert!(r > 2.0, "separated chains must be flagged: rhat = {r}");
    }

    #[test]
    fn rhat_edge_cases() {
        let mut acc = RhatAccumulator::new();
        assert_eq!(acc.rhat(), None);
        acc.push("only", 1);
        acc.push("only", 2);
        assert_eq!(acc.rhat(), None, "one chain is not comparable");
        // Two constant chains with equal means: trivially converged.
        let mut flat = RhatAccumulator::new();
        for _ in 0..10 {
            flat.push("a", 7);
            flat.push("b", 7);
        }
        assert_eq!(flat.rhat(), Some(1.0));
        // Constant but distinct: infinitely far apart.
        let mut split = RhatAccumulator::new();
        for _ in 0..10 {
            split.push("a", 1);
            split.push("b", 2);
        }
        assert_eq!(split.rhat(), Some(f64::INFINITY));
    }

    #[test]
    fn accumulator_merge_is_disjoint_union() {
        let mut left = QualityAccumulator::new();
        left.register("a", Some(100));
        left.observe("a", &[1, 2, 3]);
        let mut right = QualityAccumulator::new();
        right.observe("b", &[4, 5, 6]);
        let mut forward = left.clone();
        forward.merge(&right);
        let mut backward = right.clone();
        backward.merge(&left);
        assert_eq!(forward, backward, "disjoint union commutes");
        assert_eq!(forward.job("a").unwrap().samples(), 3);
        assert_eq!(forward.job("a").unwrap().target_ess(), Some(100));
        assert_eq!(forward.job("b").unwrap().target_ess(), None);
    }

    #[test]
    #[should_panic(expected = "split across quality accumulators")]
    fn accumulator_merge_rejects_split_jobs() {
        let mut left = QualityAccumulator::new();
        left.observe("a", &[1]);
        let mut right = QualityAccumulator::new();
        right.observe("a", &[2]);
        left.merge(&right);
    }

    #[test]
    fn report_renders_canonical_metric_lines() {
        let mut acc = QualityAccumulator::new();
        acc.register("a", Some(10));
        acc.register("b", None);
        let mut state = 1u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            acc.observe("a", &[(state >> 33) % 50]);
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            acc.observe("b", &[(state >> 33) % 50]);
        }
        let report = acc.report();
        assert!(report.jobs["a"].met, "200 near-iid samples clear an ESS target of 10");
        let mut out = String::new();
        report.render_metric_lines(&mut out);
        assert!(out.contains("metric quality-a-samples 200"), "{out}");
        assert!(out.contains("metric quality-a-met 1"), "{out}");
        assert!(out.contains("metric quality-rhat-mil "), "{out}");
        assert!(!out.contains("quality-b-met"), "jobs without an SLO render no met flag:\n{out}");
        for line in out.lines() {
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<u64>().is_ok(), "non-integer metric value in {line:?}");
        }
    }

    #[test]
    fn scale_milli_conventions() {
        assert_eq!(scale_milli(0.0), 0);
        assert_eq!(scale_milli(1.2345), 1235);
        assert_eq!(scale_milli(f64::INFINITY), u64::MAX);
        assert_eq!(scale_milli(f64::NAN), u64::MAX);
        assert_eq!(scale_milli(-0.5), 0);
    }
}
