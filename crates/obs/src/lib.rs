//! Deterministic observability for the MTO serving stack.
//!
//! Every layer above this crate answers "where did the query bill and the
//! virtual time go?" through two primitives, both engineered so that the
//! repo's bit-identical determinism contract extends to the telemetry
//! itself:
//!
//! * [`MetricsRegistry`] — hand-rolled counters, gauges, and fixed
//!   log-bucket [`Histogram`]s whose p50/p90/p99 summaries are *exact
//!   integers* derived from bucket bounds (no floating-point
//!   interpolation, so a summary is a pure function of the recorded
//!   multiset). Per-shard registries [`MetricsRegistry::merge`] at fleet
//!   epoch barriers exactly like `HistoryStore` gossip: merging is
//!   associative and commutative, so the folded registry is invariant
//!   under merge order.
//! * [`TraceSink`] — a structured span/point/gossip event recorder
//!   stamped with **virtual** time and submission order only, never
//!   wall-clock, carrying causal structure (stable span ids, parent
//!   links, cross-job gossip edges). Serialized through the
//!   FNV-checksummed [`codec`] (`mto-trace/v2`, the same line-oriented
//!   style as the history codec; v1 still decodes).
//!
//! On top of the recorder sits the **analysis layer**, all of it a pure
//! function of decoded records: [`flame::fold`] (collapsed flamegraph
//! stacks), [`critpath`] (the longest virtual-time dependency chain
//! bounding the fleet's makespan, attributed per job and phase),
//! [`timeline`] (fixed-width ASCII epoch lanes), [`diff`] (first
//! divergent event with causal context, for the determinism witnesses),
//! and [`baseline`] (the committed `OBS_BASELINE.json` gate pinning
//! shard-invariant `metric` figures). Each ships as a binary —
//! `trace2flame`, `trace2critpath`, `trace2timeline`, `trace2diff`,
//! `obs_baseline` — on the shared [`cli`] shell.
//!
//! The third deterministic surface is the **estimator-quality plane**
//! ([`quality`]): streaming convergence diagnostics (batch-means ESS,
//! windowed Geweke, cross-chain R-hat) over each job's sample series,
//! accumulated in exact integer moments so per-shard states fold at
//! fleet epoch barriers exactly like history gossip. Its figures ride
//! ordinary v2 point events and `metric quality-*` lines, and [`mix`]
//! (binary: `trace2mix`) renders per-job convergence trajectories and
//! burn-in attribution from a traced run.
//!
//! Beside the deterministic plane sits the **wall-clock plane**
//! ([`wallclock`]): opt-in real-time telemetry — per-phase wall
//! nanoseconds, barrier-wait time, and (behind the `wall-alloc`
//! feature) allocation accounting — kept in a separate
//! [`WallClockRegistry`] that is excluded from digests, traces, and
//! `metric` lines by construction. Both planes export through the
//! Prometheus text exposition ([`prom`]), and [`gap`] (binary:
//! `trace2gap`) joins a v2 trace with a wall dump into a per-epoch
//! virtual-vs-wall attribution table.
//!
//! This crate sits below `mto-osn` in the workspace DAG and depends on
//! nothing internal: timestamps are plain `u64` microseconds supplied by
//! callers (the serving layers own the virtual clocks).

pub mod baseline;
pub mod cli;
pub mod codec;
pub mod critpath;
pub mod diff;
pub mod flame;
pub mod gap;
pub mod metrics;
pub mod mix;
pub mod prom;
pub mod quality;
pub mod timeline;
pub mod trace;
pub mod wallclock;

pub use codec::{
    decode_trace, encode_trace, render_record, TraceCodecError, TRACE_MAGIC, TRACE_MIN_VERSION,
    TRACE_VERSION,
};
pub use metrics::{percent, Histogram, MetricsRegistry};
pub use trace::{TraceRecord, TraceSink, NO_SPAN};
pub use wallclock::{WallClockRegistry, WallClockScope, WallKey, WallStats};

/// FNV-1a 64-bit hash — the integrity primitive of the trace codec,
/// identical to the history codec's (the constant pair is the standard
/// FNV offset basis and prime).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
