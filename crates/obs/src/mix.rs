//! `trace2mix`: per-job convergence trajectories from a traced run.
//!
//! The quality plane stamps one set of point events per epoch barrier —
//! `quality-ess-<job>` / `quality-z-<job>` (scaled milli-units, see
//! [`crate::quality::scale_milli`]), the fleet-wide `quality-rhat`, and
//! `quality-met-<job>` when a job's `quality ess=N` SLO latches. This
//! module folds those points into a [`MixModel`] and renders the
//! deterministic line report of the `trace2mix` binary: ESS per epoch,
//! the Geweke crossing (burn-in attribution at the paper's z ≤ 0.1
//! threshold), R-hat decay, and SLO latch epochs.
//!
//! [`cross_check`] joins the model against a run report's
//! `metric quality-*` lines: the final traced ESS of every job must
//! equal the metric figure exactly (both are scaled integers derived
//! from the same accumulator), which is how CI catches the two
//! surfaces drifting apart.

use std::collections::BTreeMap;

use crate::trace::TraceRecord;

/// The paper's convergence threshold (z ≤ 0.1) in milli-units.
pub const BURN_IN_Z_MIL: u64 = 100;

/// Per-epoch figures of one job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochFigures {
    /// ESS in milli-units, when stamped this epoch.
    pub ess_mil: Option<u64>,
    /// Geweke z in milli-units, when stamped this epoch.
    pub z_mil: Option<u64>,
}

/// One job's convergence trajectory.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobTrajectory {
    /// Figures per epoch ordinal, in epoch order.
    pub epochs: BTreeMap<u64, EpochFigures>,
    /// Epoch at which the job's `quality ess=N` SLO latched, if it did.
    pub met_epoch: Option<u64>,
}

impl JobTrajectory {
    /// The last stamped ESS (milli-units), if any epoch carried one.
    pub fn final_ess_mil(&self) -> Option<u64> {
        self.epochs.values().rev().find_map(|f| f.ess_mil)
    }

    /// The last stamped z (milli-units), if any epoch carried one.
    pub fn final_z_mil(&self) -> Option<u64> {
        self.epochs.values().rev().find_map(|f| f.z_mil)
    }

    /// Burn-in attribution: the first epoch whose z crossed under the
    /// paper threshold ([`BURN_IN_Z_MIL`]), with the crossing value.
    pub fn burn_in_epoch(&self) -> Option<(u64, u64)> {
        self.epochs
            .iter()
            .find_map(|(&e, f)| f.z_mil.filter(|&z| z <= BURN_IN_Z_MIL).map(|z| (e, z)))
    }
}

/// Everything `trace2mix` extracts from a traced run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MixModel {
    /// Per-job trajectories, keyed by job id.
    pub jobs: BTreeMap<String, JobTrajectory>,
    /// Fleet-wide R-hat per epoch (milli-units).
    pub rhat: BTreeMap<u64, u64>,
}

/// Epoch ordinal of a virtual-time stamp (the fleet stamps barrier
/// events at `epoch × 1_000_000 µs`).
fn epoch_of(t_us: u64) -> u64 {
    t_us / 1_000_000
}

impl MixModel {
    /// Folds the `quality-*` points of a decoded trace. Errors when the
    /// trace carries none — the usual cause is a run without the
    /// `quality` directive, which deserves a loud exit rather than an
    /// empty report.
    pub fn from_records(records: &[TraceRecord]) -> Result<MixModel, String> {
        let mut model = MixModel::default();
        for record in records {
            let TraceRecord::Point { t_us, name, value, .. } = record else {
                continue;
            };
            let epoch = epoch_of(*t_us);
            if let Some(job) = name.strip_prefix("quality-ess-") {
                model
                    .jobs
                    .entry(job.to_string())
                    .or_default()
                    .epochs
                    .entry(epoch)
                    .or_default()
                    .ess_mil = Some(*value);
            } else if let Some(job) = name.strip_prefix("quality-z-") {
                model
                    .jobs
                    .entry(job.to_string())
                    .or_default()
                    .epochs
                    .entry(epoch)
                    .or_default()
                    .z_mil = Some(*value);
            } else if let Some(job) = name.strip_prefix("quality-met-") {
                let trajectory = model.jobs.entry(job.to_string()).or_default();
                trajectory.met_epoch.get_or_insert(epoch);
            } else if name == "quality-rhat" {
                model.rhat.insert(epoch, *value);
            }
        }
        if model.jobs.is_empty() && model.rhat.is_empty() {
            return Err(
                "trace has no quality-* points — was the run missing the `quality` directive?"
                    .to_string(),
            );
        }
        Ok(model)
    }

    /// Renders the deterministic line report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let epochs = self
            .jobs
            .values()
            .flat_map(|t| t.epochs.keys().copied())
            .chain(self.rhat.keys().copied())
            .max()
            .map_or(0, |e| e + 1);
        writeln!(out, "# convergence trajectories (quality-* points, mto-trace/v2)")
            .expect("string write");
        writeln!(out, "jobs {} epochs {}", self.jobs.len(), epochs).expect("string write");
        for (job, trajectory) in &self.jobs {
            write!(out, "job {job}").expect("string write");
            if let Some(ess) = trajectory.final_ess_mil() {
                write!(out, " final-ess-mil={ess}").expect("string write");
            }
            if let Some(z) = trajectory.final_z_mil() {
                write!(out, " final-z-mil={z}").expect("string write");
            }
            if let Some(met) = trajectory.met_epoch {
                write!(out, " met-epoch={met}").expect("string write");
            }
            out.push('\n');
            for (epoch, figures) in &trajectory.epochs {
                write!(out, "  epoch {epoch}").expect("string write");
                if let Some(ess) = figures.ess_mil {
                    write!(out, " ess-mil={ess}").expect("string write");
                }
                if let Some(z) = figures.z_mil {
                    write!(out, " z-mil={z}").expect("string write");
                }
                out.push('\n');
            }
            match trajectory.burn_in_epoch() {
                Some((epoch, z)) => writeln!(
                    out,
                    "burn-in {job} crossed z-mil<={BURN_IN_Z_MIL} at epoch {epoch} (z-mil={z})"
                )
                .expect("string write"),
                None => writeln!(out, "burn-in {job} never crossed z-mil<={BURN_IN_Z_MIL}")
                    .expect("string write"),
            }
        }
        for (epoch, rhat) in &self.rhat {
            writeln!(out, "rhat epoch {epoch} rhat-mil={rhat}").expect("string write");
        }
        out
    }
}

/// Cross-checks the traced trajectories against a run report: every
/// job's final `quality-ess-<job>` point must equal the report's
/// `metric quality-<job>-ess-mil` line exactly (same accumulator, same
/// scaled-integer encoding). Returns one confirmation line per job;
/// errors name the first diverging job.
pub fn cross_check(model: &MixModel, report_text: &str) -> Result<Vec<String>, String> {
    let mut metric_ess: BTreeMap<&str, u64> = BTreeMap::new();
    for line in report_text.lines() {
        let Some(rest) = line.strip_prefix("metric quality-") else {
            continue;
        };
        let Some((name, value)) = rest.rsplit_once(' ') else {
            continue;
        };
        if let Some(job) = name.strip_suffix("-ess-mil") {
            let value = value
                .parse::<u64>()
                .map_err(|_| format!("unparseable metric value in {line:?}"))?;
            metric_ess.insert(job, value);
        }
    }
    if metric_ess.is_empty() {
        return Err("report has no `metric quality-*-ess-mil` lines to cross-check".to_string());
    }
    let mut confirmations = Vec::new();
    for (job, trajectory) in &model.jobs {
        let Some(traced) = trajectory.final_ess_mil() else {
            return Err(format!("job {job} has no traced ESS point"));
        };
        let Some(&reported) = metric_ess.get(job.as_str()) else {
            return Err(format!("job {job} is traced but missing from the report metrics"));
        };
        if traced != reported {
            return Err(format!(
                "job {job} ESS diverged: trace says {traced}, metrics say {reported}"
            ));
        }
        confirmations.push(format!("cross-check {job} ess-mil={traced} OK"));
    }
    Ok(confirmations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSink;

    fn quality_trace() -> TraceSink {
        let mut sink = TraceSink::new();
        for epoch in 0..3u64 {
            let t = epoch * 1_000_000;
            sink.enter(t, &format!("epoch-{epoch}"));
            sink.point(t, "quality-ess-a", 1000 * (epoch + 1));
            sink.point(t, "quality-z-a", 300 / (epoch + 1));
            sink.point(t, "quality-ess-b", 500 * (epoch + 1));
            sink.point(t, "quality-rhat", 1500 - 100 * epoch);
            if epoch == 2 {
                sink.point(t, "quality-met-a", 3000);
            }
            sink.exit(t, 0);
        }
        sink
    }

    #[test]
    fn model_folds_points_into_trajectories() {
        let sink = quality_trace();
        let model = MixModel::from_records(sink.events()).unwrap();
        assert_eq!(model.jobs.len(), 2);
        let a = &model.jobs["a"];
        assert_eq!(a.final_ess_mil(), Some(3000));
        assert_eq!(a.met_epoch, Some(2));
        // z series 300, 150, 100: crosses the 0.1 threshold at epoch 2.
        assert_eq!(a.burn_in_epoch(), Some((2, 100)));
        let b = &model.jobs["b"];
        assert_eq!(b.final_ess_mil(), Some(1500));
        assert_eq!(b.burn_in_epoch(), None, "job b never stamped a z");
        assert_eq!(model.rhat.len(), 3);
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let sink = quality_trace();
        let model = MixModel::from_records(sink.events()).unwrap();
        let text = model.render();
        assert_eq!(text, MixModel::from_records(sink.events()).unwrap().render());
        assert!(text.contains("jobs 2 epochs 3"), "{text}");
        assert!(text.contains("job a final-ess-mil=3000 final-z-mil=100 met-epoch=2"), "{text}");
        assert!(text.contains("burn-in a crossed z-mil<=100 at epoch 2 (z-mil=100)"), "{text}");
        assert!(text.contains("burn-in b never crossed z-mil<=100"), "{text}");
        assert!(text.contains("rhat epoch 0 rhat-mil=1500"), "{text}");
    }

    #[test]
    fn traces_without_quality_points_are_rejected() {
        let mut sink = TraceSink::new();
        sink.enter(0, "epoch-0");
        sink.point(0, "ledger-pool", 7);
        sink.exit(0, 0);
        let err = MixModel::from_records(sink.events()).unwrap_err();
        assert!(err.contains("no quality-* points"), "{err}");
    }

    #[test]
    fn cross_check_accepts_matching_and_names_divergence() {
        let sink = quality_trace();
        let model = MixModel::from_records(sink.events()).unwrap();
        let good = "metric quality-a-ess-mil 3000\nmetric quality-b-ess-mil 1500\n";
        let lines = cross_check(&model, good).unwrap();
        assert_eq!(lines, vec!["cross-check a ess-mil=3000 OK", "cross-check b ess-mil=1500 OK"]);
        let doctored = "metric quality-a-ess-mil 3001\nmetric quality-b-ess-mil 1500\n";
        let err = cross_check(&model, doctored).unwrap_err();
        assert!(err.contains("job a ESS diverged"), "{err}");
        let missing = "metric unique-queries 10\n";
        let err = cross_check(&model, missing).unwrap_err();
        assert!(err.contains("no `metric quality-*-ess-mil` lines"), "{err}");
    }
}
