//! Prometheus text exposition of both telemetry planes.
//!
//! One snapshot document carries the deterministic
//! [`MetricsRegistry`] figures *and* the wall-plane
//! [`WallClockRegistry`] figures, in the standard
//! `# HELP` / `# TYPE` / `family{labels} value` text format, so any
//! Prometheus-compatible scraper (or the `trace2gap` joiner) can read
//! the simulator's two clocks side by side. The renderer walks
//! `BTreeMap`s only, so the emitted bytes are a pure function of the
//! recorded state — independent of metric registration order — and the
//! deterministic families are byte-identical across shard counts
//! whenever the underlying registry is.
//!
//! Families:
//!
//! * `mto_counter_total{name="…"}` / `mto_gauge{name="…"}` — registry
//!   counters and high-water gauges;
//! * `mto_hist_bucket{name="…",le="…"}` (+ `_sum`, `_count`) — the
//!   log-2-bucket histograms, with cumulative `le` bounds taken from
//!   the fixed bucket bounds and a closing `le="+Inf"` sample;
//! * `mto_anomaly_total{kind="…"}` — the anomaly counters
//!   (`trace-underflows`, `merge-conflicts`) that `metric` lines
//!   already carry, always emitted (at 0 when clean) so an alert on
//!   the family never silently loses its series;
//! * `mto_quality_*{job="…"}` — the estimator-quality plane: samples,
//!   ESS and Geweke z in milli-units, the cross-chain
//!   `mto_quality_rhat_milli`, and target/met for jobs with a
//!   `quality ess=N` SLO;
//! * `mto_wall_nanos_total` / `mto_wall_count_total` /
//!   `mto_wall_allocs_total` / `mto_wall_alloc_bytes_total`, labelled
//!   `phase="…"` plus `epoch="…"`/`shard="…"` when attributed — the
//!   wall plane. These are the only families whose values are allowed
//!   to differ run to run.
//!
//! The module also ships a minimal parser for exactly the subset the
//! renderer emits (integer values, quoted escaped labels), shared by
//! the round-trip tests and `trace2gap`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{Histogram, MetricsRegistry};
use crate::quality::{scale_milli, QualityReport};
use crate::wallclock::WallClockRegistry;

/// The anomaly counters every exposition names explicitly, mirroring
/// the `metric` lines: a scrape target alerting on `mto_anomaly_total`
/// must see the series at 0 when the run is clean, not an absent
/// family.
const ANOMALY_KINDS: [&str; 2] = ["trace-underflows", "merge-conflicts"];

/// Renders one snapshot of all planes as Prometheus text exposition.
/// `metrics` is the deterministic plane (`None` when the run collected
/// no registry); `quality` is the estimator-quality plane (`None`
/// without the `quality` directive); `wall` is the wall plane (empty is
/// fine — the wall families are simply absent).
pub fn render(
    metrics: Option<&MetricsRegistry>,
    quality: Option<&QualityReport>,
    wall: &WallClockRegistry,
) -> String {
    let mut out = String::new();
    if let Some(registry) = metrics {
        render_counters(&mut out, registry);
        render_gauges(&mut out, registry);
        render_histograms(&mut out, registry);
        render_anomalies(&mut out, registry);
    }
    if let Some(quality) = quality {
        render_quality(&mut out, quality);
    }
    render_wall(&mut out, wall);
    out
}

fn render_counters(out: &mut String, registry: &MetricsRegistry) {
    let mut first = true;
    for (name, v) in registry.counters() {
        if first {
            out.push_str("# HELP mto_counter_total Deterministic-plane counters.\n");
            out.push_str("# TYPE mto_counter_total counter\n");
            first = false;
        }
        writeln!(out, "mto_counter_total{{name=\"{}\"}} {v}", escape_label(name))
            .expect("string write");
    }
}

fn render_gauges(out: &mut String, registry: &MetricsRegistry) {
    let mut first = true;
    for (name, v) in registry.gauges() {
        if first {
            out.push_str("# HELP mto_gauge Deterministic-plane high-water gauges.\n");
            out.push_str("# TYPE mto_gauge gauge\n");
            first = false;
        }
        writeln!(out, "mto_gauge{{name=\"{}\"}} {v}", escape_label(name)).expect("string write");
    }
}

fn render_histograms(out: &mut String, registry: &MetricsRegistry) {
    let mut first = true;
    for (name, h) in registry.histograms() {
        if first {
            out.push_str("# HELP mto_hist Deterministic-plane log-2-bucket histograms.\n");
            out.push_str("# TYPE mto_hist histogram\n");
            first = false;
        }
        let name = escape_label(name);
        let mut cumulative = 0u64;
        for i in 0..Histogram::num_buckets() {
            let in_bucket = h.bucket(i);
            if in_bucket == 0 {
                continue;
            }
            cumulative += in_bucket;
            writeln!(
                out,
                "mto_hist_bucket{{name=\"{name}\",le=\"{}\"}} {cumulative}",
                Histogram::bound(i)
            )
            .expect("string write");
        }
        writeln!(out, "mto_hist_bucket{{name=\"{name}\",le=\"+Inf\"}} {}", h.count())
            .expect("string write");
        writeln!(out, "mto_hist_sum{{name=\"{name}\"}} {}", h.total()).expect("string write");
        writeln!(out, "mto_hist_count{{name=\"{name}\"}} {}", h.count()).expect("string write");
    }
}

fn render_anomalies(out: &mut String, registry: &MetricsRegistry) {
    if registry.is_empty() {
        return;
    }
    out.push_str("# HELP mto_anomaly_total Anomaly counters (nonzero means something broke).\n");
    out.push_str("# TYPE mto_anomaly_total counter\n");
    for kind in ANOMALY_KINDS {
        writeln!(
            out,
            "mto_anomaly_total{{kind=\"{}\"}} {}",
            escape_label(kind),
            registry.counter(kind)
        )
        .expect("string write");
    }
}

fn render_quality(out: &mut String, quality: &QualityReport) {
    out.push_str("# HELP mto_quality_samples_total Quality-plane samples observed per job.\n");
    out.push_str("# TYPE mto_quality_samples_total counter\n");
    for (job, q) in &quality.jobs {
        writeln!(out, "mto_quality_samples_total{{job=\"{}\"}} {}", escape_label(job), q.samples)
            .expect("string write");
    }
    out.push_str("# HELP mto_quality_ess_milli Effective sample size per job (milli-units).\n");
    out.push_str("# TYPE mto_quality_ess_milli gauge\n");
    for (job, q) in &quality.jobs {
        writeln!(
            out,
            "mto_quality_ess_milli{{job=\"{}\"}} {}",
            escape_label(job),
            scale_milli(q.ess)
        )
        .expect("string write");
    }
    let with_z: Vec<_> =
        quality.jobs.iter().filter_map(|(job, q)| q.geweke_z.map(|z| (job, z))).collect();
    if !with_z.is_empty() {
        out.push_str("# HELP mto_quality_geweke_z_milli Geweke z per job (milli-units).\n");
        out.push_str("# TYPE mto_quality_geweke_z_milli gauge\n");
        for (job, z) in with_z {
            writeln!(
                out,
                "mto_quality_geweke_z_milli{{job=\"{}\"}} {}",
                escape_label(job),
                scale_milli(z)
            )
            .expect("string write");
        }
    }
    let with_slo: Vec<_> =
        quality.jobs.iter().filter_map(|(job, q)| q.target_ess.map(|t| (job, t, q.met))).collect();
    if !with_slo.is_empty() {
        out.push_str("# HELP mto_quality_target_ess Declared quality SLO (quality ess=N).\n");
        out.push_str("# TYPE mto_quality_target_ess gauge\n");
        out.push_str("# HELP mto_quality_met Whether the quality SLO is met (0/1).\n");
        out.push_str("# TYPE mto_quality_met gauge\n");
        for (job, target, met) in with_slo {
            writeln!(out, "mto_quality_target_ess{{job=\"{}\"}} {target}", escape_label(job))
                .expect("string write");
            writeln!(out, "mto_quality_met{{job=\"{}\"}} {}", escape_label(job), u8::from(met))
                .expect("string write");
        }
    }
    if let Some(rhat) = quality.rhat {
        out.push_str("# HELP mto_quality_rhat_milli Cross-chain R-hat (milli-units).\n");
        out.push_str("# TYPE mto_quality_rhat_milli gauge\n");
        writeln!(out, "mto_quality_rhat_milli {}", scale_milli(rhat)).expect("string write");
    }
}

fn render_wall(out: &mut String, wall: &WallClockRegistry) {
    if wall.is_empty() {
        return;
    }
    out.push_str(
        "# HELP mto_wall_nanos_total Wall-plane nanoseconds per phase (not deterministic).\n",
    );
    out.push_str("# TYPE mto_wall_nanos_total counter\n");
    out.push_str("# HELP mto_wall_count_total Wall-plane observations per phase.\n");
    out.push_str("# TYPE mto_wall_count_total counter\n");
    out.push_str(
        "# HELP mto_wall_allocs_total Heap allocations per phase (0 without wall-alloc).\n",
    );
    out.push_str("# TYPE mto_wall_allocs_total counter\n");
    out.push_str("# HELP mto_wall_alloc_bytes_total Heap bytes requested per phase (0 without wall-alloc).\n");
    out.push_str("# TYPE mto_wall_alloc_bytes_total counter\n");
    for (key, stats) in wall.iter() {
        let mut labels = format!("phase=\"{}\"", escape_label(key.phase));
        if let Some(e) = key.epoch {
            write!(labels, ",epoch=\"{e}\"").expect("string write");
        }
        if let Some(s) = key.shard {
            write!(labels, ",shard=\"{s}\"").expect("string write");
        }
        writeln!(out, "mto_wall_nanos_total{{{labels}}} {}", stats.nanos).expect("string write");
        writeln!(out, "mto_wall_count_total{{{labels}}} {}", stats.count).expect("string write");
        writeln!(out, "mto_wall_allocs_total{{{labels}}} {}", stats.allocs).expect("string write");
        writeln!(out, "mto_wall_alloc_bytes_total{{{labels}}} {}", stats.bytes)
            .expect("string write");
    }
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PromSample {
    /// Family name (`mto_wall_nanos_total`, …).
    pub name: String,
    /// Label set, unescaped.
    pub labels: BTreeMap<String, String>,
    /// Sample value. The renderer only emits unsigned integers, so the
    /// parser is strict about them.
    pub value: u64,
}

impl PromSample {
    /// The value of label `key`, when present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.get(key).map(String::as_str)
    }
}

/// Parses the subset of the text exposition format that [`render`]
/// emits: comment lines are skipped; every other non-blank line must be
/// `name{label="value",…} integer` (the label block optional). Returns
/// samples in document order.
pub fn parse(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples
            .push(parse_sample(line).map_err(|e| format!("line {}: {e}: {line:?}", lineno + 1))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    let name_end = line
        .find(['{', ' '])
        .ok_or_else(|| "expected a name followed by labels or a value".to_string())?;
    let name = line[..name_end].to_string();
    if name.is_empty() {
        return Err("empty family name".to_string());
    }
    let mut labels = BTreeMap::new();
    let rest = if line.as_bytes()[name_end] == b'{' {
        let mut chars = line[name_end + 1..].char_indices().peekable();
        let body_start = name_end + 1;
        let mut key = String::new();
        let mut value = String::new();
        let mut in_value = false;
        let mut in_quotes = false;
        let mut close = None;
        while let Some((i, c)) = chars.next() {
            if in_quotes {
                match c {
                    '\\' => match chars.next() {
                        Some((_, 'n')) => value.push('\n'),
                        Some((_, '\\')) => value.push('\\'),
                        Some((_, '"')) => value.push('"'),
                        other => return Err(format!("bad escape {other:?} in label value")),
                    },
                    '"' => {
                        in_quotes = false;
                        labels.insert(std::mem::take(&mut key), std::mem::take(&mut value));
                        in_value = false;
                    }
                    c => value.push(c),
                }
                continue;
            }
            match c {
                '}' => {
                    close = Some(body_start + i + 1);
                    break;
                }
                ',' => {}
                '=' => in_value = true,
                '"' if in_value => in_quotes = true,
                c if !in_value => key.push(c),
                c => return Err(format!("unexpected {c:?} in label block")),
            }
        }
        let close = close.ok_or_else(|| "unterminated label block".to_string())?;
        &line[close..]
    } else {
        &line[name_end..]
    };
    let value = rest.trim();
    let value: u64 = value.parse().map_err(|e| format!("bad sample value {value:?}: {e}"))?;
    Ok(PromSample { name, labels, value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wallclock::{WallKey, WallStats};

    fn sample_planes() -> (MetricsRegistry, WallClockRegistry) {
        let mut m = MetricsRegistry::new();
        m.inc("walk-steps", 1100);
        m.inc("unique-queries", 195);
        m.gauge_max("max-scan-len", 31);
        m.observe("queue-wait-us", 0);
        m.observe("queue-wait-us", 3);
        m.observe("queue-wait-us", 900);
        let mut w = WallClockRegistry::new();
        w.record(
            WallKey::phase("shard-service").at_epoch(0).on_shard(1),
            WallStats { count: 1, nanos: 12345, allocs: 7, bytes: 512 },
        );
        w.record(WallKey::phase("gossip-merge").at_epoch(0), WallStats::from_nanos(999));
        (m, w)
    }

    #[test]
    fn round_trip_parses_every_emitted_sample() {
        let (m, w) = sample_planes();
        let text = render(Some(&m), None, &w);
        let samples = parse(&text).unwrap();

        let find = |name: &str, label: (&str, &str)| {
            samples
                .iter()
                .find(|s| s.name == name && s.label(label.0) == Some(label.1))
                .unwrap_or_else(|| panic!("missing {name} {label:?} in:\n{text}"))
        };
        assert_eq!(find("mto_counter_total", ("name", "walk-steps")).value, 1100);
        assert_eq!(find("mto_counter_total", ("name", "unique-queries")).value, 195);
        assert_eq!(find("mto_gauge", ("name", "max-scan-len")).value, 31);
        assert_eq!(find("mto_hist_count", ("name", "queue-wait-us")).value, 3);
        assert_eq!(find("mto_hist_sum", ("name", "queue-wait-us")).value, 903);
        assert_eq!(find("mto_hist_bucket", ("le", "+Inf")).value, 3);
        // 0 lands in the zero bucket (le="0"), 3 in le="3"; cumulative.
        assert_eq!(find("mto_hist_bucket", ("le", "0")).value, 1);
        assert_eq!(find("mto_hist_bucket", ("le", "3")).value, 2);

        let wall = find("mto_wall_nanos_total", ("phase", "shard-service"));
        assert_eq!(wall.value, 12345);
        assert_eq!(wall.label("epoch"), Some("0"));
        assert_eq!(wall.label("shard"), Some("1"));
        assert_eq!(find("mto_wall_allocs_total", ("phase", "shard-service")).value, 7);
        assert_eq!(find("mto_wall_alloc_bytes_total", ("phase", "shard-service")).value, 512);
        let gossip = find("mto_wall_nanos_total", ("phase", "gossip-merge"));
        assert_eq!(gossip.value, 999);
        assert_eq!(gossip.label("shard"), None, "unattributed labels are omitted");
    }

    #[test]
    fn output_is_byte_stable_under_registration_and_merge_order() {
        // Same recorded state, opposite registration orders.
        let mut a = MetricsRegistry::new();
        a.inc("zeta", 1);
        a.inc("alpha", 2);
        a.gauge_max("g2", 5);
        a.gauge_max("g1", 9);
        a.observe("h", 42);
        let mut b = MetricsRegistry::new();
        b.observe("h", 42);
        b.gauge_max("g1", 9);
        b.gauge_max("g2", 5);
        b.inc("alpha", 2);
        b.inc("zeta", 1);

        let mut wa = WallClockRegistry::new();
        wa.record(WallKey::phase("p2").on_shard(1), WallStats::from_nanos(10));
        wa.record(WallKey::phase("p1"), WallStats::from_nanos(20));
        let mut wb = WallClockRegistry::new();
        wb.record(WallKey::phase("p1"), WallStats::from_nanos(20));
        wb.record(WallKey::phase("p2").on_shard(1), WallStats::from_nanos(10));

        assert_eq!(render(Some(&a), None, &wa), render(Some(&b), None, &wb));

        // Merge order cannot move bytes either (the fleet folds shard
        // registries in grant order; the exposition must not care).
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(render(Some(&ab), None, &wa), render(Some(&ba), None, &wa));
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let mut w = WallClockRegistry::new();
        w.record(WallKey::phase("odd \"phase\"\\with\nnewline"), WallStats::from_nanos(1));
        let text = render(None, None, &w);
        assert!(
            text.contains(r#"phase="odd \"phase\"\\with\nnewline""#),
            "escaped exposition:\n{text}"
        );
        let samples = parse(&text).unwrap();
        assert_eq!(samples[0].label("phase"), Some("odd \"phase\"\\with\nnewline"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse("mto_counter_total{name=\"x\"} not-a-number").is_err());
        assert!(parse("mto_counter_total{name=\"x\" 3").is_err(), "unterminated label block");
        assert!(parse("{name=\"x\"} 3").is_err(), "empty family name");
        assert!(parse("# just a comment\n\n").unwrap().is_empty());
        let plain = parse("up 1").unwrap();
        assert_eq!(plain[0].name, "up");
        assert!(plain[0].labels.is_empty());
    }

    #[test]
    fn anomaly_family_carries_what_metric_lines_carry() {
        let (m, w) = sample_planes();
        let text = render(Some(&m), None, &w);
        let samples = parse(&text).unwrap();
        let kind = |k: &str| {
            samples
                .iter()
                .find(|s| s.name == "mto_anomaly_total" && s.label("kind") == Some(k))
                .unwrap_or_else(|| panic!("missing anomaly kind {k} in:\n{text}"))
                .value
        };
        // A clean run still exposes both series, at zero.
        assert_eq!(kind("trace-underflows"), 0);
        assert_eq!(kind("merge-conflicts"), 0);

        let mut dirty = m.clone();
        dirty.inc("trace-underflows", 2);
        dirty.inc("merge-conflicts", 5);
        let text = render(Some(&dirty), None, &w);
        let samples = parse(&text).unwrap();
        let dirty_kind = |k: &str| {
            samples
                .iter()
                .find(|s| s.name == "mto_anomaly_total" && s.label("kind") == Some(k))
                .unwrap()
                .value
        };
        assert_eq!(dirty_kind("trace-underflows"), 2);
        assert_eq!(dirty_kind("merge-conflicts"), 5);
    }

    #[test]
    fn quality_families_round_trip() {
        use crate::quality::QualityAccumulator;
        let mut acc = QualityAccumulator::new();
        acc.register("a", Some(50));
        acc.register("b", None);
        let mut state = 3u64;
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            acc.observe("a", &[(state >> 33) % 40]);
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            acc.observe("b", &[(state >> 33) % 40]);
        }
        let report = acc.report();
        let text = render(None, Some(&report), &WallClockRegistry::new());
        let samples = parse(&text).unwrap();
        let find = |name: &str, job: &str| {
            samples
                .iter()
                .find(|s| s.name == name && s.label("job") == Some(job))
                .unwrap_or_else(|| panic!("missing {name} job={job} in:\n{text}"))
                .value
        };
        assert_eq!(find("mto_quality_samples_total", "a"), 300);
        assert_eq!(
            find("mto_quality_ess_milli", "a"),
            crate::quality::scale_milli(report.jobs["a"].ess)
        );
        assert_eq!(find("mto_quality_target_ess", "a"), 50);
        assert_eq!(find("mto_quality_met", "a"), 1);
        assert!(
            !samples
                .iter()
                .any(|s| s.name == "mto_quality_target_ess" && s.label("job") == Some("b")),
            "jobs without an SLO expose no target series"
        );
        assert!(
            samples.iter().any(|s| s.name == "mto_quality_rhat_milli"),
            "two chains expose the cross-chain R-hat:\n{text}"
        );
    }

    #[test]
    fn empty_planes_render_nothing() {
        assert_eq!(render(None, None, &WallClockRegistry::new()), "");
        assert_eq!(render(Some(&MetricsRegistry::new()), None, &WallClockRegistry::new()), "");
    }
}
