//! `trace2flame <trace-file>` — fold an `mto-trace/v1` file into
//! collapsed flamegraph stacks on stdout.
//!
//! The output is the standard `path;to;span weight` format consumed by
//! `flamegraph.pl` and compatible renderers. Exits non-zero with a
//! diagnostic on a missing, truncated, or corrupted trace.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: trace2flame <trace-file>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("trace2flame: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let records = match mto_obs::decode_trace(&text) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("trace2flame: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", mto_obs::flame::fold(&records));
    ExitCode::SUCCESS
}
