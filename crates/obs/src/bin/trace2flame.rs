//! `trace2flame <trace-file>` — fold an `mto-trace` file into collapsed
//! flamegraph stacks on stdout.
//!
//! The output is the standard `path;to;span weight` format consumed by
//! `flamegraph.pl` and compatible renderers. Exits non-zero with a
//! one-line diagnostic on a missing, empty, header-only, truncated, or
//! corrupted trace (shared shell: `mto_obs::cli`) — never an empty
//! report.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        return mto_obs::cli::usage("trace2flame <trace-file>");
    };
    match mto_obs::cli::load_nonempty_trace("trace2flame", &path) {
        Ok(records) => {
            print!("{}", mto_obs::flame::fold(&records));
            ExitCode::SUCCESS
        }
        Err(e) => mto_obs::cli::fail(&e),
    }
}
