//! `trace2timeline <trace-file>` — render a fleet trace as fixed-width
//! ASCII epoch lanes, one row per job.
//!
//! See `mto_obs::timeline` for the cell legend. Exits non-zero with a
//! one-line diagnostic on unreadable input, an inconsistent fleet
//! model, or a flat trace with no epoch lanes to draw.

use std::process::ExitCode;

use mto_obs::critpath::FleetModel;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        return mto_obs::cli::usage("trace2timeline <trace-file>");
    };
    let records = match mto_obs::cli::load_nonempty_trace("trace2timeline", &path) {
        Ok(records) => records,
        Err(e) => return mto_obs::cli::fail(&e),
    };
    let model = match FleetModel::from_records(&records) {
        Ok(model) => model,
        Err(e) => return mto_obs::cli::fail(&format!("trace2timeline: {path}: {e}")),
    };
    match mto_obs::timeline::render(&model) {
        Some(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        None => mto_obs::cli::fail(&format!(
            "trace2timeline: {path}: flat trace (no epoch spans), nothing to draw"
        )),
    }
}
