//! `trace2diff <left-trace> <right-trace>` — report the first divergent
//! event of two traces, with causal context.
//!
//! Exit status: 0 when the decoded record streams are identical, 1 when
//! they diverge (the report names the event, the open span stack, the
//! owning epoch and job) or when either file cannot be read/decoded.
//! Byte-level differences that decode to identical records (a v1 and a
//! v2 encoding of the same run) count as identical: the tool audits
//! *behavior*, not serialization.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(left), Some(right), None) = (args.next(), args.next(), args.next()) else {
        return mto_obs::cli::usage("trace2diff <left-trace> <right-trace>");
    };
    let l = match mto_obs::cli::load_trace("trace2diff", &left) {
        Ok(records) => records,
        Err(e) => return mto_obs::cli::fail(&e),
    };
    let r = match mto_obs::cli::load_trace("trace2diff", &right) {
        Ok(records) => records,
        Err(e) => return mto_obs::cli::fail(&e),
    };
    match mto_obs::diff::first_divergence(&l, &r) {
        None => {
            println!("traces identical ({} events)", l.len());
            ExitCode::SUCCESS
        }
        Some(d) => {
            print!("{}", mto_obs::diff::render(&d));
            ExitCode::FAILURE
        }
    }
}
