//! `trace2critpath <trace-file>` — extract the critical path bounding a
//! fleet trace's virtual-time makespan.
//!
//! Prints the deterministic line report of `mto_obs::critpath::render`:
//! the terminal job, each path segment with its phase attribution
//! (service / queue-wait / budget-stall), and the totals. On a flat
//! (non-fleet) trace the path degenerates to the heaviest span. Exits
//! non-zero with a one-line diagnostic on unreadable input or a trace
//! that fails the fleet-model self-checks.

use std::process::ExitCode;

use mto_obs::critpath::{critical_path, flat_fallback, FleetModel};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        return mto_obs::cli::usage("trace2critpath <trace-file>");
    };
    let records = match mto_obs::cli::load_nonempty_trace("trace2critpath", &path) {
        Ok(records) => records,
        Err(e) => return mto_obs::cli::fail(&e),
    };
    let model = match FleetModel::from_records(&records) {
        Ok(model) => model,
        Err(e) => return mto_obs::cli::fail(&format!("trace2critpath: {path}: {e}")),
    };
    match critical_path(&model) {
        Some(cp) => print!("{}", mto_obs::critpath::render(&cp)),
        None => match flat_fallback(&records) {
            Some((name, weight)) => {
                println!("# flat trace: no epochs, the heaviest span is the path");
                println!("makespan-epochs 0");
                println!("path span={name} weight={weight}");
            }
            None => {
                return mto_obs::cli::fail(&format!(
                    "trace2critpath: {path}: no spans to extract a path from"
                ))
            }
        },
    }
    ExitCode::SUCCESS
}
