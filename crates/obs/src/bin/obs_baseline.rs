//! `obs_baseline` — the committed metrics baseline gate.
//!
//! ```text
//! obs_baseline check <baseline.json> <report.txt>
//! obs_baseline write <baseline.json> <report.txt> <request note…>
//! ```
//!
//! `check` compares the shard-invariant `metric` lines of a rendered
//! report against the committed `OBS_BASELINE.json`, exiting 1 with one
//! `drift metric=…` line per figure outside its declared tolerance.
//! `write` regenerates the baseline from a report (tolerances default
//! to 0 — the determinism contract — and can be relaxed by hand).

use std::process::ExitCode;

use mto_obs::baseline::{parse_metric_lines, Baseline, BaselineEntry};

const USAGE: &str = "obs_baseline check <baseline.json> <report.txt>\n       \
                     obs_baseline write <baseline.json> <report.txt> <request note...>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") if args.len() == 3 => check(&args[1], &args[2]),
        Some("write") if args.len() >= 4 => write(&args[1], &args[2], &args[3..].join(" ")),
        _ => mto_obs::cli::usage(USAGE),
    }
}

fn check(baseline_path: &str, report_path: &str) -> ExitCode {
    let baseline_text = match mto_obs::cli::read_file("obs_baseline", baseline_path) {
        Ok(text) => text,
        Err(e) => return mto_obs::cli::fail(&e),
    };
    let baseline = match Baseline::parse(&baseline_text) {
        Ok(b) => b,
        Err(e) => return mto_obs::cli::fail(&format!("obs_baseline: {baseline_path}: {e}")),
    };
    let report = match mto_obs::cli::read_file("obs_baseline", report_path) {
        Ok(text) => text,
        Err(e) => return mto_obs::cli::fail(&e),
    };
    let actual = parse_metric_lines(&report);
    let drifts = baseline.compare(&actual);
    if drifts.is_empty() {
        println!("obs-baseline: {} pinned metrics within tolerance", baseline.metrics.len());
        ExitCode::SUCCESS
    } else {
        for d in &drifts {
            println!("{d}");
        }
        eprintln!(
            "obs_baseline: {report_path}: {} of {} pinned metrics drifted",
            drifts.len(),
            baseline.metrics.len()
        );
        ExitCode::FAILURE
    }
}

fn write(baseline_path: &str, report_path: &str, request: &str) -> ExitCode {
    let report = match mto_obs::cli::read_file("obs_baseline", report_path) {
        Ok(text) => text,
        Err(e) => return mto_obs::cli::fail(&e),
    };
    let metrics = parse_metric_lines(&report);
    if metrics.is_empty() {
        return mto_obs::cli::fail(&format!(
            "obs_baseline: {report_path}: no `metric` lines to pin"
        ));
    }
    let baseline = Baseline {
        request: request.to_string(),
        metrics: metrics
            .into_iter()
            .map(|(name, value)| (name, BaselineEntry { value, tolerance_pct: 0 }))
            .collect(),
    };
    if let Err(e) = std::fs::write(baseline_path, baseline.render()) {
        return mto_obs::cli::fail(&format!("obs_baseline: cannot write {baseline_path}: {e}"));
    }
    println!("obs-baseline: pinned {} metrics to {baseline_path}", baseline.metrics.len());
    ExitCode::SUCCESS
}
