//! `obs_baseline` — the committed metrics baseline gate.
//!
//! ```text
//! obs_baseline check <baseline.json> <report.txt>
//! obs_baseline --write <baseline.json> <report.txt> [request note…]
//! ```
//!
//! `check` compares the shard-invariant `metric` lines of a rendered
//! report against the committed `OBS_BASELINE.json`, exiting 1 with one
//! `drift metric=…` line per figure outside its declared tolerance.
//! `--write` (alias: `write`) regenerates the baseline from a report:
//! when the baseline file already exists, each still-present metric
//! keeps its declared tolerance and the request note carries over
//! unless a new one is given — so accepting intentional drift is one
//! command, not a hand edit of the JSON. Metrics new to the report are
//! pinned at tolerance 0 (the determinism contract).

use std::process::ExitCode;

use mto_obs::baseline::{parse_metric_lines, Baseline, BaselineEntry};

const USAGE: &str = "obs_baseline check <baseline.json> <report.txt>\n       \
                     obs_baseline --write <baseline.json> <report.txt> [request note...]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let note = |args: &[String]| {
        if args.len() > 3 {
            Some(args[3..].join(" "))
        } else {
            None
        }
    };
    match args.first().map(String::as_str) {
        Some("check") if args.len() == 3 => check(&args[1], &args[2]),
        Some("write" | "--write") if args.len() >= 3 => write(&args[1], &args[2], note(&args)),
        _ => mto_obs::cli::usage(USAGE),
    }
}

fn check(baseline_path: &str, report_path: &str) -> ExitCode {
    let baseline_text = match mto_obs::cli::read_file("obs_baseline", baseline_path) {
        Ok(text) => text,
        Err(e) => return mto_obs::cli::fail(&e),
    };
    let baseline = match Baseline::parse(&baseline_text) {
        Ok(b) => b,
        Err(e) => return mto_obs::cli::fail(&format!("obs_baseline: {baseline_path}: {e}")),
    };
    let report = match mto_obs::cli::read_file("obs_baseline", report_path) {
        Ok(text) => text,
        Err(e) => return mto_obs::cli::fail(&e),
    };
    let actual = parse_metric_lines(&report);
    let drifts = baseline.compare(&actual);
    if drifts.is_empty() {
        println!("obs-baseline: {} pinned metrics within tolerance", baseline.metrics.len());
        ExitCode::SUCCESS
    } else {
        for d in &drifts {
            println!("{d}");
        }
        eprintln!(
            "obs_baseline: {report_path}: {} of {} pinned metrics drifted",
            drifts.len(),
            baseline.metrics.len()
        );
        ExitCode::FAILURE
    }
}

fn write(baseline_path: &str, report_path: &str, request: Option<String>) -> ExitCode {
    let report = match mto_obs::cli::read_file("obs_baseline", report_path) {
        Ok(text) => text,
        Err(e) => return mto_obs::cli::fail(&e),
    };
    let metrics = parse_metric_lines(&report);
    if metrics.is_empty() {
        return mto_obs::cli::fail(&format!(
            "obs_baseline: {report_path}: no `metric` lines to pin"
        ));
    }
    // An existing baseline donates its request note and per-metric
    // tolerances, so a regenerate only moves the *values*. A missing
    // file is a fresh start; an unparsable one is an error (silently
    // clobbering a corrupt-but-committed gate would hide the corruption).
    let prior = match std::fs::read_to_string(baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => Some(b),
            Err(e) => {
                return mto_obs::cli::fail(&format!(
                    "obs_baseline: {baseline_path}: existing baseline is unreadable ({e}); \
                     delete it to start fresh"
                ))
            }
        },
        Err(_) => None,
    };
    let request = match (request, &prior) {
        (Some(note), _) => note,
        (None, Some(prior)) => prior.request.clone(),
        (None, None) => {
            return mto_obs::cli::fail(&format!(
                "obs_baseline: {baseline_path}: no existing baseline to carry a request note \
                 from; pass one: obs_baseline --write <baseline.json> <report.txt> <note...>"
            ))
        }
    };
    let carried: usize = metrics
        .keys()
        .filter(|name| prior.as_ref().is_some_and(|p| p.metrics.contains_key(*name)))
        .count();
    let baseline = Baseline {
        request,
        metrics: metrics
            .into_iter()
            .map(|(name, value)| {
                let tolerance_pct = prior
                    .as_ref()
                    .and_then(|p| p.metrics.get(&name))
                    .map_or(0, |e| e.tolerance_pct);
                (name, BaselineEntry { value, tolerance_pct })
            })
            .collect(),
    };
    if let Err(e) = std::fs::write(baseline_path, baseline.render()) {
        return mto_obs::cli::fail(&format!("obs_baseline: cannot write {baseline_path}: {e}"));
    }
    println!(
        "obs-baseline: pinned {} metrics to {baseline_path} ({carried} tolerances carried over)",
        baseline.metrics.len()
    );
    ExitCode::SUCCESS
}
