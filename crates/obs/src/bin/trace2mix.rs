//! `trace2mix <trace-file> [report-file]` — render per-job convergence
//! trajectories (ESS per epoch, Geweke crossing, R-hat decay) from the
//! quality points of a v2 trace.
//!
//! With a report file, additionally cross-checks the final traced ESS of
//! every job against the report's `metric quality-*-ess-mil` lines and
//! appends one confirmation line per job; any divergence (or a report
//! with no quality metrics) exits non-zero with a one-line diagnostic.

use std::process::ExitCode;

use mto_obs::mix::{cross_check, MixModel};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(trace_path), report_path, None) = (args.next(), args.next(), args.next()) else {
        return mto_obs::cli::usage("trace2mix <trace-file> [report-file]");
    };
    let records = match mto_obs::cli::load_nonempty_trace("trace2mix", &trace_path) {
        Ok(records) => records,
        Err(e) => return mto_obs::cli::fail(&e),
    };
    let model = match MixModel::from_records(&records) {
        Ok(model) => model,
        Err(e) => return mto_obs::cli::fail(&format!("trace2mix: {trace_path}: {e}")),
    };
    print!("{}", model.render());
    if let Some(report_path) = report_path {
        let report = match mto_obs::cli::read_file("trace2mix", &report_path) {
            Ok(text) => text,
            Err(e) => return mto_obs::cli::fail(&e),
        };
        match cross_check(&model, &report) {
            Ok(lines) => {
                for line in lines {
                    println!("{line}");
                }
            }
            Err(e) => return mto_obs::cli::fail(&format!("trace2mix: {report_path}: {e}")),
        }
    }
    ExitCode::SUCCESS
}
