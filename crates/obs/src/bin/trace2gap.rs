//! `trace2gap <trace-file> <prom-file>` — per-epoch virtual-vs-wall
//! attribution.
//!
//! Joins a v2 causal trace (the virtual plane) with a Prometheus wall
//! snapshot written by `mto_serve`'s `prom FILE` directive (the wall
//! plane): one row per epoch showing the fixed virtual span, the steps
//! jobs took, and the wall nanoseconds per phase. The `epochs` line
//! equals the trace's epoch count — the same figure as `metric epochs`.
//! Exits non-zero on unreadable input, an empty or header-only trace, a
//! flat (non-fleet) trace, or a malformed prom dump.

use std::process::ExitCode;

use mto_obs::critpath::FleetModel;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(trace_path), Some(prom_path), None) = (args.next(), args.next(), args.next()) else {
        return mto_obs::cli::usage("trace2gap <trace-file> <prom-file>");
    };
    let records = match mto_obs::cli::load_nonempty_trace("trace2gap", &trace_path) {
        Ok(records) => records,
        Err(e) => return mto_obs::cli::fail(&e),
    };
    let model = match FleetModel::from_records(&records) {
        Ok(model) => model,
        Err(e) => return mto_obs::cli::fail(&format!("trace2gap: {trace_path}: {e}")),
    };
    if model.epochs == 0 {
        return mto_obs::cli::fail(&format!(
            "trace2gap: {trace_path}: flat trace (no epoch spans), nothing to attribute"
        ));
    }
    let prom_text = match mto_obs::cli::read_file("trace2gap", &prom_path) {
        Ok(text) => text,
        Err(e) => return mto_obs::cli::fail(&e),
    };
    let samples = match mto_obs::prom::parse(&prom_text) {
        Ok(samples) => samples,
        Err(e) => return mto_obs::cli::fail(&format!("trace2gap: {prom_path}: {e}")),
    };
    print!("{}", mto_obs::gap::render(&model, &samples));
    ExitCode::SUCCESS
}
