//! Hand-rolled metrics: counters, gauges, and log-bucket histograms with
//! exact-integer quantiles.
//!
//! Nothing here floats except nothing: every stored value, every bucket
//! count, and every reported quantile is a `u64`. Quantiles are derived
//! from fixed power-of-two bucket bounds, so a summary is a deterministic
//! pure function of the recorded multiset — two registries that saw the
//! same values render byte-identical summaries regardless of insertion
//! or merge order. That property is what lets the fleet commit its
//! metrics output to the same bit-identical-across-shard-counts contract
//! as its results digests.
//!
//! Metric names are `&'static str`: the instrumentation vocabulary is
//! closed at compile time, lookups never allocate, and merged registries
//! can share keys without cloning.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of histogram buckets: one per possible `u64` bit width, plus a
/// dedicated zero bucket at index 0.
const BUCKETS: usize = 65;

/// A fixed log-2-bucket histogram over `u64` values.
///
/// Bucket `0` holds exactly the value `0`; bucket `i ≥ 1` holds values of
/// bit width `i`, i.e. the range `[2^(i-1), 2^i - 1]`. A quantile is
/// reported as the **upper bound of the bucket containing the rank** —
/// an exact integer, never interpolated — except when the rank lands in
/// the top non-empty bucket, where the tracked exact maximum is tighter
/// and is reported instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; BUCKETS], count: 0, total: 0, max: 0 }
    }
}

/// Index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Count in bucket `i` (test and merge-invariance hook).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of buckets (the valid `i` range of [`Histogram::bucket`]).
    pub fn num_buckets() -> usize {
        BUCKETS
    }

    /// Inclusive upper bound of bucket `i` (the `le` labels of the
    /// Prometheus exposition reuse these fixed bounds).
    pub fn bound(i: usize) -> u64 {
        bucket_bound(i)
    }

    /// The `num/den` quantile as an exact integer: the upper bound of
    /// the bucket containing the rank-`ceil(count · num / den)` value
    /// (clamped to the exact maximum). Returns 0 for an empty histogram.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        assert!(den > 0 && num <= den, "quantile {num}/{den} outside [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as u128 * num as u128).div_ceil(den as u128) as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (upper bucket bound).
    pub fn p50(&self) -> u64 {
        self.quantile(1, 2)
    }

    /// 90th percentile (upper bucket bound).
    pub fn p90(&self) -> u64 {
        self.quantile(9, 10)
    }

    /// 99th percentile (upper bucket bound).
    pub fn p99(&self) -> u64 {
        self.quantile(99, 100)
    }

    /// Folds `other` into `self` bucket-wise. Associative and
    /// commutative: bucket counts, count, total, and max are all
    /// order-invariant reductions.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        self.max = self.max.max(other.max);
    }
}

/// A named bundle of counters, gauges, and histograms.
///
/// All maps are `BTreeMap`s so iteration — and therefore every rendered
/// summary — is deterministically ordered by metric name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Raises gauge `name` to `v` if `v` is higher (high-water-mark
    /// semantics — the only gauge combine that merges commutatively).
    pub fn gauge_max(&mut self, name: &'static str, v: u64) {
        let g = self.gauges.entry(name).or_insert(0);
        *g = (*g).max(v);
    }

    /// Records `v` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().record(v);
    }

    /// Folds an externally accumulated histogram into histogram `name`
    /// (bucket-wise, like [`MetricsRegistry::merge`]) — how layers that
    /// keep their own hot-path [`Histogram`] hand it to a registry at a
    /// barrier.
    pub fn merge_histogram(&mut self, name: &'static str, h: &Histogram) {
        self.histograms.entry(name).or_default().merge(h);
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name` (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram `name`, when it has recorded anything.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order (exposition-layer hook: the
    /// Prometheus renderer walks the registry without knowing names).
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&name, &v)| (name, v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().map(|(&name, &v)| (name, v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&name, h)| (name, h))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, gauges take the max,
    /// histograms merge bucket-wise. Every combine is associative and
    /// commutative, so folding per-shard registries at an epoch barrier
    /// yields the same registry in any merge order — the property
    /// `proptest_metrics` pins down.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&name, &v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (&name, &v) in &other.gauges {
            let g = self.gauges.entry(name).or_insert(0);
            *g = (*g).max(v);
        }
        for (&name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }

    /// Renders the registry as deterministic summary lines, each
    /// prefixed with `prefix`:
    ///
    /// ```text
    /// <prefix>counter <name> <value>
    /// <prefix>gauge <name> <value>
    /// <prefix>hist <name> count=<c> total=<t> p50=<a> p90=<b> p99=<c> max=<m>
    /// ```
    pub fn render_into(&self, out: &mut String, prefix: &str) {
        for (name, v) in &self.counters {
            writeln!(out, "{prefix}counter {name} {v}").expect("string write");
        }
        for (name, v) in &self.gauges {
            writeln!(out, "{prefix}gauge {name} {v}").expect("string write");
        }
        for (name, h) in &self.histograms {
            writeln!(
                out,
                "{prefix}hist {name} count={} total={} p50={} p90={} p99={} max={}",
                h.count(),
                h.total(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max()
            )
            .expect("string write");
        }
    }

    /// [`MetricsRegistry::render_into`] as an owned string.
    pub fn render(&self, prefix: &str) -> String {
        let mut out = String::new();
        self.render_into(&mut out, prefix);
        out
    }
}

/// Formats `num / den` as a fixed two-decimal percentage using integer
/// arithmetic only (round-half-up), so derived ratio lines are as
/// deterministic as the counters they come from. Returns `"0.00%"` for a
/// zero denominator.
pub fn percent(num: u64, den: u64) -> String {
    if den == 0 {
        return "0.00%".to_owned();
    }
    // Basis points, rounded half-up: num/den * 10000.
    let bp = (num as u128 * 10_000 + den as u128 / 2) / den as u128;
    format!("{}.{:02}%", bp / 100, bp % 100)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn quantiles_are_exact_bucket_bounds_clamped_to_max() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 200, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.total(), 1306);
        // rank ceil(6*1/2)=3 → the third smallest (3) lives in bucket 2,
        // bound 3.
        assert_eq!(h.p50(), 3);
        // p99 rank 6 → top value's bucket [512, 1023], clamped to max.
        assert_eq!(h.p99(), 1000);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn empty_and_single_value_histograms() {
        let mut h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        h.record(0);
        assert_eq!(h.p50(), 0, "zero bucket");
        h.record(7);
        assert_eq!(h.p99(), 7);
    }

    #[test]
    fn merge_is_bucketwise_and_order_invariant() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..100u64 {
            if v % 2 == 0 {
                a.record(v * 3);
            } else {
                b.record(v * 3);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 100);

        let mut all = Histogram::new();
        for v in 0..100u64 {
            all.record(v * 3);
        }
        assert_eq!(ab, all, "merged halves equal the single-pass histogram");
    }

    #[test]
    fn registry_counters_gauges_and_render_are_deterministic() {
        let mut r = MetricsRegistry::new();
        r.inc("walk-steps", 10);
        r.inc("walk-steps", 5);
        r.gauge_max("arena-bytes", 100);
        r.gauge_max("arena-bytes", 40);
        r.observe("queue-wait-us", 3);
        assert_eq!(r.counter("walk-steps"), 15);
        assert_eq!(r.gauge("arena-bytes"), 100);
        let text = r.render("metrics ");
        assert_eq!(
            text,
            "metrics counter walk-steps 15\nmetrics gauge arena-bytes 100\n\
             metrics hist queue-wait-us count=1 total=3 p50=3 p90=3 p99=3 max=3\n"
        );
    }

    #[test]
    fn registry_merge_combines_all_kinds() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.inc("x", 2);
        b.inc("x", 3);
        b.inc("y", 1);
        a.gauge_max("g", 9);
        b.gauge_max("g", 11);
        a.observe("h", 1);
        b.observe("h", 1000);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("x"), 5);
        assert_eq!(ab.counter("y"), 1);
        assert_eq!(ab.gauge("g"), 11);
        assert_eq!(ab.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn percent_is_integer_exact() {
        assert_eq!(percent(0, 0), "0.00%");
        assert_eq!(percent(1, 2), "50.00%");
        assert_eq!(percent(9180, 10000), "91.80%");
        assert_eq!(percent(1, 3), "33.33%");
        assert_eq!(percent(2, 3), "66.67%", "round half up");
        assert_eq!(percent(5, 4), "125.00%", "ratios above one are legal");
    }
}
