//! `trace2timeline`: fixed-width ASCII epoch lanes, one row per job.
//!
//! A cheap visual complement to [`crate::critpath`]: the same
//! [`FleetModel`] rendered as one character per `(job, epoch)` cell, so
//! a starved or budget-stalled job is visible as a run of `w`/`s` cells
//! at a glance. The rendering is a pure function of the model, hence —
//! like everything else in this crate — byte-identical across shard
//! counts for the same workload.
//!
//! Cell legend (also printed under the lanes):
//!
//! * `#` — the job took steps this epoch;
//! * `G` — took steps *and* adopted gossiped responses at this barrier;
//! * `F` — took steps and was observed finished at this barrier;
//! * `w` — runnable but granted nothing (queue-wait);
//! * `s` — suspended on an exhausted budget slice;
//! * `X` — suspended and later cut by the budget;
//! * `.` — already done.

use crate::critpath::{EpochState, FleetModel};

/// Renders the model as fixed-width lanes. Returns `None` for a model
/// with no epochs or no jobs (flat scheduler traces have no lanes to
/// draw).
pub fn render(model: &FleetModel) -> Option<String> {
    use std::fmt::Write as _;
    if model.epochs == 0 || model.jobs.is_empty() {
        return None;
    }
    let label = model.jobs.iter().map(|j| j.id.len()).max().unwrap_or(0).max("epoch".len());
    let mut out = String::new();
    writeln!(
        out,
        "# epoch timeline: {} epochs x {} jobs (1 virtual second per epoch)",
        model.epochs,
        model.jobs.len()
    )
    .expect("string write");
    // Ruler row: the epoch ordinal's last digit.
    write!(out, "{:>label$} |", "epoch").expect("string write");
    for e in 0..model.epochs {
        out.push(char::from_digit((e % 10) as u32, 10).expect("digit"));
    }
    out.push_str("|\n");
    for lane in &model.jobs {
        write!(out, "{:>label$} |", lane.id).expect("string write");
        for (e, state) in lane.states.iter().enumerate() {
            let adopted_here = model
                .gossip
                .iter()
                .any(|g| g.epoch == Some(e) && g.to == format!("job-{}", lane.id));
            let cell = match state {
                EpochState::Ran(_) if lane.finish_epoch == Some(e) => 'F',
                EpochState::Ran(_) if adopted_here => 'G',
                EpochState::Ran(_) => '#',
                EpochState::Starved => 'w',
                EpochState::Suspended if lane.cut => 'X',
                EpochState::Suspended => 's',
                EpochState::Done => '.',
            };
            out.push(cell);
        }
        out.push_str("|\n");
    }
    out.push_str(
        "# legend: # ran  G ran+adopted  F finished  w queue-wait  s budget-stall  X cut  . done\n",
    );
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critpath::FleetModel;
    use crate::trace::TraceSink;

    #[test]
    fn lanes_are_fixed_width_and_legend_cells_appear() {
        let mut sink = TraceSink::new();
        sink.point(0, "suspend-long-id", 5);
        sink.enter(0, "epoch-0");
        sink.enter(0, "job-a");
        sink.exit(0, 10);
        sink.point(0, "finish-a", 10);
        sink.point(0, "resume-long-id", 3);
        sink.exit(0, 0);
        sink.enter(1_000_000, "epoch-1");
        sink.enter(1_000_000, "job-long-id");
        sink.exit(1_000_000, 7);
        sink.gossip(1_000_000, "job-a", "job-long-id", 4);
        sink.point(1_000_000, "finish-long-id", 7);
        sink.exit(1_000_000, 0);
        let model = FleetModel::from_records(sink.events()).unwrap();
        let text = render(&model).unwrap();
        let lanes: Vec<&str> =
            text.lines().filter(|l| l.ends_with('|') && l.contains(" |")).collect();
        assert_eq!(lanes.len(), 3, "ruler + two jobs: {text}");
        let width = lanes[0].len();
        assert!(lanes.iter().all(|l| l.len() == width), "fixed-width lanes:\n{text}");
        assert!(text.contains("|F.|\n"), "a finished then done:\n{text}");
        assert!(text.contains("|sF|\n"), "long-id stalls then finishes:\n{text}");
        assert_eq!(render(&model).unwrap(), text, "rendering is deterministic");
    }

    #[test]
    fn flat_traces_have_no_lanes() {
        let mut sink = TraceSink::new();
        sink.enter(0, "serve");
        sink.exit(0, 5);
        let model = FleetModel::from_records(sink.events()).unwrap();
        assert!(render(&model).is_none());
    }
}
