//! `trace2gap`: join the two clocks — virtual trace vs wall plane.
//!
//! The v2 causal trace says where *virtual* time went (epochs, jobs,
//! barriers); the Prometheus wall dump says where *hardware* time went
//! (per-phase wall nanoseconds, keyed by epoch and shard). This module
//! joins them: one row per epoch with the virtual span on the left and
//! the wall attribution on the right, so "epoch 3 took 1 virtual second"
//! can finally be read next to "and 180 µs of real CPU, 60% of it
//! barrier-wait". That per-epoch gap is the comparison harness the
//! future live executor will be differentially validated against — the
//! virtual plane is the oracle, the wall plane is the measurement.
//!
//! Only the epoch structure comes from the trace; every wall figure
//! comes from the dump. Phases without an `epoch` label (pipeline
//! replay, history encode/decode, scheduler workers) land in a separate
//! `unattributed` section rather than being smeared across rows.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::critpath::{EpochState, FleetModel};
use crate::prom::PromSample;

/// Virtual microseconds per fleet epoch (the `epoch_t_us` convention of
/// the trace plane: 1 epoch = 1 virtual second).
const EPOCH_VIRTUAL_US: u64 = 1_000_000;

/// The wall-nanos family the join reads.
const WALL_NANOS: &str = "mto_wall_nanos_total";

/// Renders the per-epoch virtual-vs-wall attribution table.
///
/// The `epochs` line equals the trace model's epoch count (the same
/// figure as `metric epochs` and `makespan-epochs` — CI greps it). Each
/// epoch row shows the fixed virtual span, the steps jobs took that
/// epoch, and the wall nanoseconds attributed to it per phase (summed
/// across shards, phases in name order). Wall samples with no epoch
/// label (or an epoch the trace never ran) are listed under
/// `unattributed`.
pub fn render(model: &FleetModel, samples: &[PromSample]) -> String {
    // (epoch, phase) → nanos and phase → nanos for the unattributed set.
    let mut by_epoch: BTreeMap<usize, BTreeMap<String, u64>> = BTreeMap::new();
    let mut unattributed: BTreeMap<String, u64> = BTreeMap::new();
    let mut total_ns = 0u64;
    for s in samples {
        if s.name != WALL_NANOS {
            continue;
        }
        let phase = s.label("phase").unwrap_or("?").to_string();
        total_ns = total_ns.saturating_add(s.value);
        match s.label("epoch").and_then(|e| e.parse::<usize>().ok()) {
            Some(e) if e < model.epochs => {
                let slot = by_epoch.entry(e).or_default().entry(phase).or_insert(0);
                *slot = slot.saturating_add(s.value);
            }
            _ => {
                let slot = unattributed.entry(phase).or_insert(0);
                *slot = slot.saturating_add(s.value);
            }
        }
    }

    let mut out = String::new();
    out.push_str("# virtual-vs-wall attribution (virtual plane: trace; wall plane: prom dump)\n");
    writeln!(out, "epochs {}", model.epochs).expect("string write");
    for e in 0..model.epochs {
        let steps: u64 = model
            .jobs
            .iter()
            .map(|lane| match lane.states.get(e) {
                Some(&EpochState::Ran(n)) => n,
                _ => 0,
            })
            .sum();
        let phases = by_epoch.get(&e);
        let wall_ns: u64 = phases.map_or(0, |p| p.values().sum());
        write!(out, "epoch {e} virtual-us {EPOCH_VIRTUAL_US} steps {steps} wall-ns {wall_ns}")
            .expect("string write");
        if let Some(phases) = phases {
            for (phase, ns) in phases {
                write!(out, " {phase}={ns}").expect("string write");
            }
        }
        out.push('\n');
    }
    if !unattributed.is_empty() {
        let sum: u64 = unattributed.values().sum();
        write!(out, "unattributed wall-ns {sum}").expect("string write");
        for (phase, ns) in &unattributed {
            write!(out, " {phase}={ns}").expect("string write");
        }
        out.push('\n');
    }
    writeln!(out, "total wall-ns {total_ns}").expect("string write");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prom;
    use crate::trace::TraceSink;
    use crate::wallclock::{WallClockRegistry, WallKey, WallStats};

    /// A two-epoch fleet trace: job `a` runs both epochs, finishing at
    /// the second barrier.
    fn two_epoch_model() -> FleetModel {
        let mut sink = TraceSink::new();
        sink.enter(0, "epoch-0");
        sink.enter(0, "job-a");
        sink.exit(0, 10);
        sink.exit(0, 0);
        sink.enter(1_000_000, "epoch-1");
        sink.enter(1_000_000, "job-a");
        sink.exit(1_000_000, 7);
        sink.point(1_000_000, "finish-a", 7);
        sink.exit(1_000_000, 0);
        FleetModel::from_records(sink.events()).unwrap()
    }

    fn wall_samples() -> Vec<PromSample> {
        let mut w = WallClockRegistry::new();
        // Two shards' service in epoch 0 must sum into one row cell.
        w.record(
            WallKey::phase("shard-service").at_epoch(0).on_shard(0),
            WallStats::from_nanos(100),
        );
        w.record(
            WallKey::phase("shard-service").at_epoch(0).on_shard(1),
            WallStats::from_nanos(50),
        );
        w.record(WallKey::phase("barrier-wait").at_epoch(0).on_shard(1), WallStats::from_nanos(30));
        w.record(
            WallKey::phase("shard-service").at_epoch(1).on_shard(0),
            WallStats::from_nanos(40),
        );
        w.record(WallKey::phase("history-encode"), WallStats::from_nanos(9));
        prom::parse(&prom::render(None, None, &w)).unwrap()
    }

    #[test]
    fn epoch_rows_join_virtual_steps_with_wall_phases() {
        let text = render(&two_epoch_model(), &wall_samples());
        assert!(text.contains("epochs 2\n"), "{text}");
        assert!(
            text.contains("epoch 0 virtual-us 1000000 steps 10 wall-ns 180 barrier-wait=30 shard-service=150\n"),
            "{text}"
        );
        assert!(
            text.contains("epoch 1 virtual-us 1000000 steps 7 wall-ns 40 shard-service=40\n"),
            "{text}"
        );
        assert!(text.contains("unattributed wall-ns 9 history-encode=9\n"), "{text}");
        assert!(text.contains("total wall-ns 229\n"), "{text}");
    }

    #[test]
    fn epochs_without_wall_samples_still_get_rows() {
        let text = render(&two_epoch_model(), &[]);
        assert!(text.contains("epochs 2\n"), "{text}");
        assert!(text.contains("epoch 0 virtual-us 1000000 steps 10 wall-ns 0\n"), "{text}");
        assert!(text.contains("epoch 1 virtual-us 1000000 steps 7 wall-ns 0\n"), "{text}");
        assert!(!text.contains("unattributed"), "{text}");
        assert!(text.contains("total wall-ns 0\n"), "{text}");
    }

    #[test]
    fn out_of_range_epoch_labels_fall_into_unattributed() {
        let mut w = WallClockRegistry::new();
        w.record(WallKey::phase("shard-service").at_epoch(99), WallStats::from_nanos(5));
        let samples = prom::parse(&prom::render(None, None, &w)).unwrap();
        let text = render(&two_epoch_model(), &samples);
        assert!(text.contains("unattributed wall-ns 5 shard-service=5\n"), "{text}");
    }
}
