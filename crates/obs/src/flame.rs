//! `trace2flame`: fold span events into collapsed flamegraph stacks.
//!
//! The collapsed-stack format is one line per distinct span path —
//! `outer;inner;leaf <weight>` — the input `flamegraph.pl` and every
//! compatible renderer consume. Weights are the **explicit span costs**
//! recorded at exit (see [`crate::trace::TraceSink::exit`]), summed per
//! path; output lines are sorted by path, so the fold of a deterministic
//! trace is itself byte-deterministic.

use std::collections::BTreeMap;

use crate::trace::TraceRecord;

/// Folds a record stream into collapsed stacks: `path weight` lines
/// sorted by path, one per distinct enter-path. Point events and spans
/// left open at the end of the stream are ignored; an `exit` with no
/// open span is skipped (the codec cannot produce one from a sink, but
/// hand-edited traces can).
pub fn fold(records: &[TraceRecord]) -> String {
    let mut stack: Vec<&str> = Vec::new();
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    for r in records {
        match r {
            TraceRecord::Enter { name, .. } => stack.push(name),
            TraceRecord::Exit { cost, .. } => {
                if stack.is_empty() {
                    continue;
                }
                let path = stack.join(";");
                stack.pop();
                *weights.entry(path).or_insert(0) += cost;
            }
            TraceRecord::Point { .. } | TraceRecord::Gossip { .. } => {}
        }
    }
    let mut out = String::new();
    for (path, w) in &weights {
        out.push_str(path);
        out.push(' ');
        out.push_str(&w.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSink;

    #[test]
    fn nested_spans_fold_to_semicolon_paths() {
        let mut sink = TraceSink::new();
        for epoch in 0..2u64 {
            sink.enter(epoch, "epoch");
            sink.enter(epoch, "job-a");
            sink.exit(epoch, 10);
            sink.enter(epoch, "job-b");
            sink.exit(epoch, 5);
            sink.exit(epoch, 1);
        }
        let folded = fold(sink.events());
        assert_eq!(folded, "epoch 2\nepoch;job-a 20\nepoch;job-b 10\n");
    }

    #[test]
    fn unbalanced_and_empty_streams_are_harmless() {
        assert_eq!(fold(&[]), "");
        let dangling = vec![TraceRecord::Exit { seq: 0, t_us: 0, span: 0, cost: 9 }];
        assert_eq!(fold(&dangling), "");
        let open = vec![TraceRecord::Enter {
            seq: 0,
            t_us: 0,
            span: 1,
            parent: 0,
            name: "left-open".into(),
        }];
        assert_eq!(fold(&open), "");
    }

    #[test]
    fn fold_is_deterministic_and_sorted() {
        let mut sink = TraceSink::new();
        sink.enter(0, "zz");
        sink.exit(0, 1);
        sink.enter(0, "aa");
        sink.exit(0, 2);
        assert_eq!(fold(sink.events()), "aa 2\nzz 1\n");
    }
}
