//! The wall-clock telemetry plane: real time, kept strictly apart from
//! virtual time.
//!
//! Everything else in this crate is stamped with *virtual* microseconds
//! and is part of the bit-identical determinism contract. This module is
//! the deliberate exception: it measures what the hardware actually
//! spends — wall nanoseconds per phase, allocation counts and bytes
//! (opt-in, see below), barrier-wait time — and records it into a
//! [`WallClockRegistry`] that is **excluded from digests, traces, and
//! `metric` lines by construction**. Nothing in the deterministic plane
//! ever reads a figure from this one; the only coupling allowed is an
//! `if enabled` branch around a [`WallClockScope`], which cannot perturb
//! results because scopes only *observe* time around work that runs
//! identically either way.
//!
//! Threading model: there are no global registries and no locks on the
//! hot path. Each thread (fleet shard, scheduler worker) accumulates
//! into its own registry or raw nanosecond cell; owners merge serially
//! at the same barriers where deterministic state merges. Merging is a
//! plain per-key sum — associative and commutative — so the *schema* of
//! a wall dump is stable even though its figures, being real time, never
//! are.
//!
//! Allocation accounting needs a global allocator hook, so it is gated
//! behind the `wall-alloc` feature: when enabled, a binary may install
//! [`CountingAllocator`] as its `#[global_allocator]` and every
//! [`WallClockScope`] picks up alloc/byte deltas for free. Without the
//! feature the snapshot helpers return zeros and scopes record only
//! time. Counters are process-wide relaxed atomics (not thread-local:
//! the allocator is reentrant from any thread, including ones this crate
//! never sees), so per-phase attribution of allocations is approximate
//! under concurrency — fine for the "where does memory churn come from"
//! question the plane answers, and exactly as approximate as any
//! sampling profiler.

use std::collections::BTreeMap;
use std::time::Instant;

/// Totals for one wall-clock phase: how many times it ran, wall
/// nanoseconds, and (with `wall-alloc`) allocation count/bytes observed
/// while it ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WallStats {
    /// Times the phase was recorded.
    pub count: u64,
    /// Total wall nanoseconds (saturating).
    pub nanos: u64,
    /// Heap allocations observed during the phase (0 without
    /// `wall-alloc`).
    pub allocs: u64,
    /// Heap bytes requested during the phase (0 without `wall-alloc`).
    pub bytes: u64,
}

impl WallStats {
    /// A single observation of `nanos` wall nanoseconds (count 1, no
    /// allocation figures) — for callers that time a section by hand
    /// instead of through a [`WallClockScope`].
    pub fn from_nanos(nanos: u64) -> WallStats {
        WallStats { count: 1, nanos, allocs: 0, bytes: 0 }
    }

    /// Folds `other` into `self` (saturating sums — wall figures must
    /// never wrap into nonsense).
    pub fn absorb(&mut self, other: WallStats) {
        self.count = self.count.saturating_add(other.count);
        self.nanos = self.nanos.saturating_add(other.nanos);
        self.allocs = self.allocs.saturating_add(other.allocs);
        self.bytes = self.bytes.saturating_add(other.bytes);
    }
}

/// Where a wall observation belongs: a phase name plus optional epoch
/// and shard (or worker) attribution. Ordered so registry iteration —
/// and therefore every rendered dump — is deterministic in *schema*
/// (phase, then epoch, then shard) even though the figures are not.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct WallKey {
    /// Phase name (`"shard-service"`, `"barrier-wait"`, …). `&'static
    /// str` for the same reason metric names are: the vocabulary is
    /// closed at compile time and keys never allocate.
    pub phase: &'static str,
    /// Fleet epoch the observation belongs to, when attributable.
    pub epoch: Option<u64>,
    /// Shard (or scheduler worker) index, when attributable.
    pub shard: Option<u64>,
}

impl WallKey {
    /// A key with no epoch/shard attribution.
    pub fn phase(phase: &'static str) -> WallKey {
        WallKey { phase, epoch: None, shard: None }
    }

    /// Attributes the key to fleet epoch `e`.
    pub fn at_epoch(mut self, e: u64) -> WallKey {
        self.epoch = Some(e);
        self
    }

    /// Attributes the key to shard (or worker) `s`.
    pub fn on_shard(mut self, s: u64) -> WallKey {
        self.shard = Some(s);
        self
    }
}

/// The wall-plane registry: per-key [`WallStats`] sums.
///
/// Deliberately *not* a [`crate::MetricsRegistry`]: keeping the type
/// distinct means no code path can accidentally fold wall figures into
/// the deterministic metric plane — the compiler enforces the two-plane
/// separation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WallClockRegistry {
    entries: BTreeMap<WallKey, WallStats>,
}

impl WallClockRegistry {
    /// An empty registry.
    pub fn new() -> WallClockRegistry {
        WallClockRegistry::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Folds `stats` into the entry for `key`.
    pub fn record(&mut self, key: WallKey, stats: WallStats) {
        self.entries.entry(key).or_default().absorb(stats);
    }

    /// Folds `other` into `self` key-wise (associative and commutative,
    /// like every other barrier merge in the stack).
    pub fn merge(&mut self, other: &WallClockRegistry) {
        for (&key, &stats) in &other.entries {
            self.record(key, stats);
        }
    }

    /// The entry for `key`, if recorded.
    pub fn get(&self, key: &WallKey) -> Option<&WallStats> {
        self.entries.get(key)
    }

    /// Iterates entries in key order (phase, epoch, shard).
    pub fn iter(&self) -> impl Iterator<Item = (&WallKey, &WallStats)> {
        self.entries.iter()
    }

    /// Grand total across every key.
    pub fn total(&self) -> WallStats {
        let mut total = WallStats::default();
        for &stats in self.entries.values() {
            total.absorb(stats);
        }
        total
    }
}

/// An open wall-clock measurement: captures `Instant::now()` and the
/// allocation counters at start; [`WallClockScope::stop`] turns the
/// deltas into a [`WallStats`] observation.
#[derive(Debug)]
pub struct WallClockScope {
    started: Instant,
    allocs0: u64,
    bytes0: u64,
}

impl WallClockScope {
    /// Starts timing now.
    pub fn start() -> WallClockScope {
        let (allocs0, bytes0) = alloc_snapshot();
        WallClockScope { started: Instant::now(), allocs0, bytes0 }
    }

    /// Stops timing and returns the observation (count 1).
    pub fn stop(self) -> WallStats {
        let nanos = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let (allocs1, bytes1) = alloc_snapshot();
        WallStats {
            count: 1,
            nanos,
            allocs: allocs1.saturating_sub(self.allocs0),
            bytes: bytes1.saturating_sub(self.bytes0),
        }
    }

    /// Stops timing and folds the observation into `registry` at `key`.
    pub fn stop_into(self, registry: &mut WallClockRegistry, key: WallKey) {
        registry.record(key, self.stop());
    }
}

/// Snapshot of the process-wide allocation counters: `(allocations,
/// bytes requested)`. Always `(0, 0)` unless the `wall-alloc` feature is
/// on *and* the binary installed [`CountingAllocator`] as its global
/// allocator.
pub fn alloc_snapshot() -> (u64, u64) {
    #[cfg(feature = "wall-alloc")]
    {
        use std::sync::atomic::Ordering;
        (counting::ALLOCS.load(Ordering::Relaxed), counting::BYTES.load(Ordering::Relaxed))
    }
    #[cfg(not(feature = "wall-alloc"))]
    {
        (0, 0)
    }
}

// The one unsafe block in the workspace: implementing `GlobalAlloc`
// requires an `unsafe impl` by language design. The implementation adds
// two relaxed atomic increments and otherwise forwards verbatim to
// `std::alloc::System`, so every safety obligation (layout validity,
// pointer provenance) is discharged by the system allocator itself.
#[cfg(feature = "wall-alloc")]
#[allow(unsafe_code)]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(super) static ALLOCS: AtomicU64 = AtomicU64::new(0);
    pub(super) static BYTES: AtomicU64 = AtomicU64::new(0);

    /// A counting wrapper around [`System`]: every allocation bumps the
    /// process-wide counters [`super::alloc_snapshot`] reads. Install it
    /// in a binary with:
    ///
    /// ```ignore
    /// #[global_allocator]
    /// static ALLOC: mto_obs::wallclock::CountingAllocator =
    ///     mto_obs::wallclock::CountingAllocator;
    /// ```
    pub struct CountingAllocator;

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }
}

#[cfg(feature = "wall-alloc")]
pub use counting::CountingAllocator;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_order_by_phase_then_epoch_then_shard() {
        let mut r = WallClockRegistry::new();
        r.record(WallKey::phase("b").at_epoch(1), WallStats::from_nanos(1));
        r.record(WallKey::phase("a").at_epoch(2).on_shard(3), WallStats::from_nanos(2));
        r.record(WallKey::phase("a"), WallStats::from_nanos(3));
        r.record(WallKey::phase("a").at_epoch(2).on_shard(1), WallStats::from_nanos(4));
        let keys: Vec<&WallKey> = r.iter().map(|(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![
                &WallKey::phase("a"),
                &WallKey::phase("a").at_epoch(2).on_shard(1),
                &WallKey::phase("a").at_epoch(2).on_shard(3),
                &WallKey::phase("b").at_epoch(1),
            ]
        );
    }

    #[test]
    fn record_sums_and_merge_is_order_invariant() {
        let key = WallKey::phase("service").at_epoch(0).on_shard(0);
        let mut a = WallClockRegistry::new();
        a.record(key, WallStats { count: 1, nanos: 10, allocs: 2, bytes: 64 });
        a.record(key, WallStats { count: 1, nanos: 5, allocs: 1, bytes: 32 });
        assert_eq!(a.get(&key), Some(&WallStats { count: 2, nanos: 15, allocs: 3, bytes: 96 }));

        let mut b = WallClockRegistry::new();
        b.record(key, WallStats::from_nanos(7));
        b.record(WallKey::phase("gossip-merge"), WallStats::from_nanos(3));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab.len(), 2);
        assert_eq!(ab.total().nanos, 25);
        assert_eq!(ab.total().count, 4);
    }

    #[test]
    fn saturating_absorb_never_wraps() {
        let mut s = WallStats { count: u64::MAX, nanos: u64::MAX, allocs: 0, bytes: 0 };
        s.absorb(WallStats { count: 1, nanos: 1, allocs: 1, bytes: 1 });
        assert_eq!(s.count, u64::MAX);
        assert_eq!(s.nanos, u64::MAX);
        assert_eq!(s.allocs, 1);
    }

    #[test]
    fn scope_records_one_observation_with_real_elapsed_time() {
        let mut r = WallClockRegistry::new();
        let scope = WallClockScope::start();
        // Do *something* measurable; even a few loop iterations register
        // at nanosecond granularity on any monotonic clock.
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            acc = acc.wrapping_add(i);
        }
        std::hint::black_box(acc);
        scope.stop_into(&mut r, WallKey::phase("test"));
        let stats = r.get(&WallKey::phase("test")).expect("recorded");
        assert_eq!(stats.count, 1);
        assert!(stats.nanos > 0, "a monotonic clock must advance: {stats:?}");
    }

    #[test]
    fn alloc_snapshot_is_zero_without_the_feature_and_monotone_with_it() {
        let (a0, b0) = alloc_snapshot();
        let v: Vec<u8> = vec![0; 4096];
        std::hint::black_box(&v);
        let (a1, b1) = alloc_snapshot();
        // Without `wall-alloc` both snapshots are (0, 0); with it (and a
        // binary that installed the allocator) the counters only grow.
        // This library test never installs the allocator, so both cases
        // reduce to monotonicity.
        assert!(a1 >= a0 && b1 >= b0);
        if cfg!(not(feature = "wall-alloc")) {
            assert_eq!((a0, b0, a1, b1), (0, 0, 0, 0));
        }
    }
}
