//! The structured trace sink: span enter/exit and point events on a
//! virtual timeline.
//!
//! A [`TraceSink`] records three kinds of events, each stamped with a
//! caller-supplied **virtual-time** microsecond instant and an
//! automatically assigned submission ordinal (`seq`). Wall-clock never
//! appears: two runs of the same deterministic workload produce
//! byte-identical traces. The lockstep fleet stamps events with the
//! finest shard-invariant clock it has — the epoch ordinal — so its
//! traces are byte-identical across shard counts too.
//!
//! Spans carry an **explicit cost** at exit (steps, microseconds —
//! whatever the instrumented layer meters) instead of deriving cost from
//! timestamp deltas; that keeps coarse-clocked span nests meaningful and
//! is what [`crate::flame::fold`] attributes to collapsed stacks.

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceRecord {
    /// A span opened.
    Enter {
        /// Submission ordinal (process-wide, monotonically increasing).
        seq: u64,
        /// Virtual-time stamp in microseconds.
        t_us: u64,
        /// Span name (whitespace-free).
        name: String,
    },
    /// The innermost open span closed.
    Exit {
        /// Submission ordinal.
        seq: u64,
        /// Virtual-time stamp in microseconds.
        t_us: u64,
        /// Explicit cost attributed to the span (the flamegraph weight).
        cost: u64,
    },
    /// An instantaneous event with a value.
    Point {
        /// Submission ordinal.
        seq: u64,
        /// Virtual-time stamp in microseconds.
        t_us: u64,
        /// Event name (whitespace-free).
        name: String,
        /// Event payload value.
        value: u64,
    },
}

impl TraceRecord {
    /// The record's submission ordinal.
    pub fn seq(&self) -> u64 {
        match self {
            TraceRecord::Enter { seq, .. }
            | TraceRecord::Exit { seq, .. }
            | TraceRecord::Point { seq, .. } => *seq,
        }
    }

    /// The record's virtual-time stamp.
    pub fn t_us(&self) -> u64 {
        match self {
            TraceRecord::Enter { t_us, .. }
            | TraceRecord::Exit { t_us, .. }
            | TraceRecord::Point { t_us, .. } => *t_us,
        }
    }
}

/// Replaces whitespace so names stay single-token in the line codec.
fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_whitespace() { '-' } else { c }).collect()
}

/// An in-memory recorder of [`TraceRecord`]s.
///
/// The sink is intentionally not thread-safe: deterministic layers emit
/// events from their single-threaded control points (epoch barriers, job
/// finalization), never from racing workers. Hot paths hold an
/// `Option<&mut TraceSink>` (or no sink at all) so the disabled
/// configuration costs nothing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSink {
    events: Vec<TraceRecord>,
    next_seq: u64,
    depth: usize,
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Opens a span named `name` at virtual time `t_us`.
    pub fn enter(&mut self, t_us: u64, name: &str) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.depth += 1;
        self.events.push(TraceRecord::Enter { seq, t_us, name: sanitize(name) });
    }

    /// Closes the innermost open span at `t_us`, attributing `cost` to
    /// it. An exit with no open span is ignored (defensive: a damaged
    /// caller cannot poison the recording).
    pub fn exit(&mut self, t_us: u64, cost: u64) {
        if self.depth == 0 {
            debug_assert!(false, "TraceSink::exit with no open span");
            return;
        }
        self.depth -= 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(TraceRecord::Exit { seq, t_us, cost });
    }

    /// Records an instantaneous `name = value` event at `t_us`.
    pub fn point(&mut self, t_us: u64, name: &str, value: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(TraceRecord::Point { seq, t_us, name: sanitize(name), value });
    }

    /// Number of open spans.
    pub fn open_spans(&self) -> usize {
        self.depth
    }

    /// The recorded events, in submission order.
    pub fn events(&self) -> &[TraceRecord] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_stamped_in_submission_order() {
        let mut sink = TraceSink::new();
        sink.enter(0, "epoch-0");
        sink.point(0, "grant job-a", 64);
        sink.enter(0, "job-a");
        sink.exit(0, 64);
        sink.exit(0, 64);
        assert_eq!(sink.len(), 5);
        assert_eq!(sink.open_spans(), 0);
        let seqs: Vec<u64> = sink.events().iter().map(TraceRecord::seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(
            sink.events()[1],
            TraceRecord::Point { seq: 1, t_us: 0, name: "grant-job-a".into(), value: 64 },
            "whitespace in names is sanitized"
        );
    }

    #[test]
    fn recording_is_deterministic() {
        let run = || {
            let mut sink = TraceSink::new();
            for e in 0..3u64 {
                sink.enter(e * 1_000_000, "epoch");
                sink.point(e * 1_000_000, "ledger-pool", 100 - e);
                sink.exit(e * 1_000_000, 128);
            }
            sink
        };
        assert_eq!(run(), run());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "no open span")]
    fn unbalanced_exit_is_caught_in_debug() {
        TraceSink::new().exit(0, 1);
    }
}
