//! The structured trace sink: span enter/exit, point, and gossip-edge
//! events on a virtual timeline.
//!
//! A [`TraceSink`] records four kinds of events, each stamped with a
//! caller-supplied **virtual-time** microsecond instant and an
//! automatically assigned submission ordinal (`seq`). Wall-clock never
//! appears: two runs of the same deterministic workload produce
//! byte-identical traces. The lockstep fleet stamps events with the
//! finest shard-invariant clock it has — the epoch ordinal — so its
//! traces are byte-identical across shard counts too.
//!
//! Since `mto-trace/v2`, every event also carries **causal structure**:
//! spans get a stable id (assigned in open order, starting at 1; 0 means
//! "outside any span") and record the id of their parent span, and point
//! and gossip events record the id of the innermost span open when they
//! fired. That turns a decoded trace into a causal DAG the analysis
//! layer ([`crate::critpath`], [`crate::diff`]) can walk without
//! replaying the stack discipline.
//!
//! Spans carry an **explicit cost** at exit (steps, microseconds —
//! whatever the instrumented layer meters) instead of deriving cost from
//! timestamp deltas; that keeps coarse-clocked span nests meaningful and
//! is what [`crate::flame::fold`] attributes to collapsed stacks.

/// Span id meaning "outside any span" (as a parent or enclosing id).
pub const NO_SPAN: u64 = 0;

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceRecord {
    /// A span opened.
    Enter {
        /// Submission ordinal (process-wide, monotonically increasing).
        seq: u64,
        /// Virtual-time stamp in microseconds.
        t_us: u64,
        /// Stable span id (1-based, assigned in open order).
        span: u64,
        /// Id of the enclosing span, or [`NO_SPAN`] at top level.
        parent: u64,
        /// Span name (whitespace-free).
        name: String,
    },
    /// The innermost open span closed.
    Exit {
        /// Submission ordinal.
        seq: u64,
        /// Virtual-time stamp in microseconds.
        t_us: u64,
        /// Id of the span being closed.
        span: u64,
        /// Explicit cost attributed to the span (the flamegraph weight).
        cost: u64,
    },
    /// An instantaneous event with a value.
    Point {
        /// Submission ordinal.
        seq: u64,
        /// Virtual-time stamp in microseconds.
        t_us: u64,
        /// Id of the innermost open span, or [`NO_SPAN`].
        span: u64,
        /// Event name (whitespace-free).
        name: String,
        /// Event payload value.
        value: u64,
    },
    /// A causal cross-job edge: `to` adopted `count` responses first
    /// fetched on behalf of `from` (history gossip at an epoch barrier).
    Gossip {
        /// Submission ordinal.
        seq: u64,
        /// Virtual-time stamp in microseconds.
        t_us: u64,
        /// Id of the innermost open span, or [`NO_SPAN`].
        span: u64,
        /// Name of the job whose crawl first fetched the responses.
        from: String,
        /// Name of the adopting job.
        to: String,
        /// Number of adopted responses.
        count: u64,
    },
}

impl TraceRecord {
    /// The record's submission ordinal.
    pub fn seq(&self) -> u64 {
        match self {
            TraceRecord::Enter { seq, .. }
            | TraceRecord::Exit { seq, .. }
            | TraceRecord::Point { seq, .. }
            | TraceRecord::Gossip { seq, .. } => *seq,
        }
    }

    /// The record's virtual-time stamp.
    pub fn t_us(&self) -> u64 {
        match self {
            TraceRecord::Enter { t_us, .. }
            | TraceRecord::Exit { t_us, .. }
            | TraceRecord::Point { t_us, .. }
            | TraceRecord::Gossip { t_us, .. } => *t_us,
        }
    }

    /// The span the record belongs to: its own id for `Enter`/`Exit`,
    /// the innermost enclosing span for `Point`/`Gossip`.
    pub fn span(&self) -> u64 {
        match self {
            TraceRecord::Enter { span, .. }
            | TraceRecord::Exit { span, .. }
            | TraceRecord::Point { span, .. }
            | TraceRecord::Gossip { span, .. } => *span,
        }
    }
}

/// Replaces whitespace so names stay single-token in the line codec.
fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_whitespace() { '-' } else { c }).collect()
}

/// An in-memory recorder of [`TraceRecord`]s.
///
/// The sink is intentionally not thread-safe: deterministic layers emit
/// events from their single-threaded control points (epoch barriers, job
/// finalization), never from racing workers. Hot paths hold an
/// `Option<&mut TraceSink>` (or no sink at all) so the disabled
/// configuration costs nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSink {
    events: Vec<TraceRecord>,
    next_seq: u64,
    next_span: u64,
    open: Vec<u64>,
    underflows: u64,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink { events: Vec::new(), next_seq: 0, next_span: 1, open: Vec::new(), underflows: 0 }
    }
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    fn take_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    fn current_span(&self) -> u64 {
        self.open.last().copied().unwrap_or(NO_SPAN)
    }

    /// Opens a span named `name` at virtual time `t_us` and returns its
    /// stable id.
    pub fn enter(&mut self, t_us: u64, name: &str) -> u64 {
        let seq = self.take_seq();
        let span = self.next_span;
        self.next_span += 1;
        let parent = self.current_span();
        self.open.push(span);
        self.events.push(TraceRecord::Enter { seq, t_us, span, parent, name: sanitize(name) });
        span
    }

    /// Closes the innermost open span at `t_us`, attributing `cost` to
    /// it. An exit with no open span records nothing but is **counted**
    /// as an underflow anomaly (see [`TraceSink::underflows`]) so a
    /// damaged caller cannot poison the recording yet cannot hide
    /// either.
    pub fn exit(&mut self, t_us: u64, cost: u64) {
        let Some(span) = self.open.pop() else {
            self.underflows += 1;
            return;
        };
        let seq = self.take_seq();
        self.events.push(TraceRecord::Exit { seq, t_us, span, cost });
    }

    /// Records an instantaneous `name = value` event at `t_us`.
    pub fn point(&mut self, t_us: u64, name: &str, value: u64) {
        let seq = self.take_seq();
        let span = self.current_span();
        self.events.push(TraceRecord::Point { seq, t_us, span, name: sanitize(name), value });
    }

    /// Records a causal gossip edge: `to` adopted `count` responses
    /// first fetched on behalf of `from`.
    pub fn gossip(&mut self, t_us: u64, from: &str, to: &str, count: u64) {
        let seq = self.take_seq();
        let span = self.current_span();
        self.events.push(TraceRecord::Gossip {
            seq,
            t_us,
            span,
            from: sanitize(from),
            to: sanitize(to),
            count,
        });
    }

    /// Number of open spans.
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// Number of `exit` calls that found no open span. Always zero for a
    /// well-nested caller; surfaced as the `trace-underflows` metric.
    pub fn underflows(&self) -> u64 {
        self.underflows
    }

    /// The recorded events, in submission order.
    pub fn events(&self) -> &[TraceRecord] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_stamped_in_submission_order() {
        let mut sink = TraceSink::new();
        sink.enter(0, "epoch-0");
        sink.point(0, "grant job-a", 64);
        sink.enter(0, "job-a");
        sink.exit(0, 64);
        sink.exit(0, 64);
        assert_eq!(sink.len(), 5);
        assert_eq!(sink.open_spans(), 0);
        let seqs: Vec<u64> = sink.events().iter().map(TraceRecord::seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(
            sink.events()[1],
            TraceRecord::Point { seq: 1, t_us: 0, span: 1, name: "grant-job-a".into(), value: 64 },
            "whitespace in names is sanitized"
        );
    }

    #[test]
    fn span_ids_and_parents_encode_the_nest() {
        let mut sink = TraceSink::new();
        let outer = sink.enter(0, "epoch-0");
        let inner = sink.enter(0, "job-a");
        sink.exit(0, 10);
        sink.gossip(0, "job-a", "job-b", 3);
        sink.exit(0, 0);
        sink.point(1, "fleet-epochs", 1);
        assert_eq!((outer, inner), (1, 2));
        assert_eq!(
            sink.events()[1],
            TraceRecord::Enter { seq: 1, t_us: 0, span: 2, parent: 1, name: "job-a".into() }
        );
        assert_eq!(sink.events()[2], TraceRecord::Exit { seq: 2, t_us: 0, span: 2, cost: 10 });
        assert_eq!(
            sink.events()[3],
            TraceRecord::Gossip {
                seq: 3,
                t_us: 0,
                span: 1,
                from: "job-a".into(),
                to: "job-b".into(),
                count: 3
            },
            "gossip edges record the innermost open span"
        );
        assert_eq!(sink.events()[5].span(), NO_SPAN, "points outside any span carry span 0");
    }

    #[test]
    fn recording_is_deterministic() {
        let run = || {
            let mut sink = TraceSink::new();
            for e in 0..3u64 {
                sink.enter(e * 1_000_000, "epoch");
                sink.point(e * 1_000_000, "ledger-pool", 100 - e);
                sink.exit(e * 1_000_000, 128);
            }
            sink
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unbalanced_exit_is_counted_not_recorded() {
        let mut sink = TraceSink::new();
        sink.exit(0, 1);
        assert_eq!(sink.underflows(), 1);
        assert!(sink.is_empty(), "the underflowing exit records nothing");
        sink.enter(0, "a");
        sink.exit(0, 2);
        sink.exit(0, 3);
        assert_eq!(sink.underflows(), 2);
        assert_eq!(sink.len(), 2, "well-nested activity keeps recording after an underflow");
    }
}
