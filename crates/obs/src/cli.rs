//! Shared arg/IO/error shell of the trace tools.
//!
//! All four trace binaries (`trace2flame`, `trace2critpath`,
//! `trace2timeline`, `trace2diff`) and `obs_baseline` funnel their file
//! handling through here so every failure mode — missing file, empty
//! file, truncated or corrupt trace — produces one clear
//! `tool: path: what went wrong` diagnostic line and a nonzero exit,
//! never a bare decode error or a panic.

use crate::codec::decode_trace;
use crate::trace::TraceRecord;

/// Reads and decodes a trace file, mapping every failure to the
/// one-line `tool: path: message` diagnostic the bins print.
pub fn load_trace(tool: &str, path: &str) -> Result<Vec<TraceRecord>, String> {
    let text = read_file(tool, path)?;
    decode_trace(&text).map_err(|e| format!("{tool}: {path}: {e}"))
}

/// [`load_trace`], additionally rejecting a *header-only* trace (a
/// valid `events 0` document). Every analysis tool wants this: an empty
/// report silently piped onward is worse than a loud exit, because the
/// usual cause is a run that produced no spans (missing `trace`
/// directive, wrong file) rather than a run that genuinely did nothing.
pub fn load_nonempty_trace(tool: &str, path: &str) -> Result<Vec<TraceRecord>, String> {
    let records = load_trace(tool, path)?;
    if records.is_empty() {
        return Err(format!(
            "{tool}: {path}: trace has no events (header-only document) — nothing to analyze"
        ));
    }
    Ok(records)
}

/// Reads a text file with the shared diagnostics (used for report files
/// too, where trace decoding does not apply). Empty files are called
/// out explicitly — a 0-byte trace is the most common symptom of a run
/// that died before writing, and "checksum trailer missing" buries it.
pub fn read_file(tool: &str, path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{tool}: cannot read {path}: {e}"))?;
    if text.is_empty() {
        return Err(format!("{tool}: {path}: empty file (expected an mto-trace document)"));
    }
    Ok(text)
}

/// Prints the usage line to stderr and returns the conventional usage
/// exit code (2).
pub fn usage(usage: &str) -> std::process::ExitCode {
    eprintln!("usage: {usage}");
    std::process::ExitCode::from(2)
}

/// Prints a diagnostic (already `tool: …`-prefixed) and returns the
/// failure exit code.
pub fn fail(message: &str) -> std::process::ExitCode {
    eprintln!("{message}");
    std::process::ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_empty_and_corrupt_files_get_one_line_diagnostics() {
        let err = load_trace("t2x", "/nonexistent/trace").unwrap_err();
        assert!(err.starts_with("t2x: cannot read /nonexistent/trace:"), "{err}");

        let dir = std::env::temp_dir().join(format!("mto-obs-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let empty = dir.join("empty.trace");
        std::fs::write(&empty, "").unwrap();
        let err = load_trace("t2x", empty.to_str().unwrap()).unwrap_err();
        assert!(err.contains("empty file"), "{err}");

        let torn = dir.join("torn.trace");
        std::fs::write(&torn, "mto-trace v2\nevents 0\n").unwrap();
        let err = load_trace("t2x", torn.to_str().unwrap()).unwrap_err();
        assert!(err.contains("trace truncated"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_only_traces_pass_load_but_fail_the_nonempty_loader() {
        let dir = std::env::temp_dir().join(format!("mto-obs-cli-nonempty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("header-only.trace");
        std::fs::write(&path, crate::codec::encode_trace(&crate::trace::TraceSink::new())).unwrap();
        let path = path.to_str().unwrap();
        assert_eq!(load_trace("t2x", path).unwrap(), vec![], "a valid empty document decodes");
        let err = load_nonempty_trace("t2x", path).unwrap_err();
        assert!(err.contains("trace has no events"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
