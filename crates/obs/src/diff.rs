//! `trace2diff`: locate the first divergent event of two traces, with
//! causal context.
//!
//! The determinism witnesses (fleet tests, CI `obs-smoke`) compare
//! whole encoded traces; when they fail, a byte offset explains
//! nothing. This module compares two decoded record streams and reports
//! the first index where they differ, together with the **causal
//! context** reconstructed from the common prefix: the stack of spans
//! open at that point, the owning epoch, and the owning job (from the
//! open spans or the divergent record's own name). That turns "bytes
//! differ at offset 48213" into "the two runs first disagree at event
//! 1204, inside epoch-3, on job mto-b's grant".

use crate::codec::render_record;
use crate::trace::TraceRecord;

/// Point prefixes whose suffix names the owning job.
const JOB_POINT_PREFIXES: &[&str] = &[
    "grant-",
    "finish-",
    "suspend-",
    "resume-",
    "cut-",
    "ledger-charge-",
    "ledger-allowance-",
    "aging-promotion-",
];

/// The first difference between two record streams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the first differing event (also the length of the
    /// common prefix).
    pub index: usize,
    /// The left stream's record at `index` (`None`: stream ended).
    pub left: Option<TraceRecord>,
    /// The right stream's record at `index` (`None`: stream ended).
    pub right: Option<TraceRecord>,
    /// Names of spans open after the common prefix, outermost first.
    pub open_spans: Vec<String>,
    /// Innermost open `epoch-*` span, if any.
    pub epoch: Option<String>,
    /// Owning job id, from the open spans or the divergent records.
    pub job: Option<String>,
}

/// Extracts a job id from a record's own naming, if it has one.
fn job_of(record: &TraceRecord) -> Option<String> {
    match record {
        TraceRecord::Enter { name, .. } => name.strip_prefix("job-").map(str::to_string),
        TraceRecord::Point { name, .. } => {
            JOB_POINT_PREFIXES.iter().find_map(|p| name.strip_prefix(p)).map(str::to_string)
        }
        TraceRecord::Gossip { to, .. } => {
            to.strip_prefix("job-").map(str::to_string).or_else(|| Some(to.clone()))
        }
        TraceRecord::Exit { .. } => None,
    }
}

/// Compares two streams, returning `None` when they are identical and
/// the first divergence otherwise.
pub fn first_divergence(left: &[TraceRecord], right: &[TraceRecord]) -> Option<Divergence> {
    let index = left
        .iter()
        .zip(right.iter())
        .position(|(l, r)| l != r)
        .unwrap_or_else(|| left.len().min(right.len()));
    if index == left.len() && index == right.len() {
        return None;
    }

    // Causal context from the (identical) common prefix.
    let mut open: Vec<&str> = Vec::new();
    for r in &left[..index] {
        match r {
            TraceRecord::Enter { name, .. } => open.push(name),
            TraceRecord::Exit { .. } => {
                open.pop();
            }
            _ => {}
        }
    }
    let epoch = open.iter().rev().find(|n| n.starts_with("epoch-")).map(|n| n.to_string());
    let l = left.get(index).cloned();
    let r = right.get(index).cloned();
    let job = open
        .iter()
        .rev()
        .find_map(|n| n.strip_prefix("job-"))
        .map(str::to_string)
        .or_else(|| l.as_ref().and_then(job_of))
        .or_else(|| r.as_ref().and_then(job_of));
    Some(Divergence {
        index,
        left: l,
        right: r,
        open_spans: open.into_iter().map(str::to_string).collect(),
        epoch,
        job,
    })
}

fn side(record: &Option<TraceRecord>) -> String {
    match record {
        Some(r) => {
            let mut line = String::new();
            render_record(&mut line, r);
            line
        }
        None => "<trace ended>".to_string(),
    }
}

/// Renders the divergence as the multi-line report `trace2diff` prints.
pub fn render(d: &Divergence) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(out, "first divergent event: index {}", d.index).expect("string write");
    writeln!(out, "  left:  {}", side(&d.left)).expect("string write");
    writeln!(out, "  right: {}", side(&d.right)).expect("string write");
    writeln!(
        out,
        "  open spans: {}",
        if d.open_spans.is_empty() { "(none)".to_string() } else { d.open_spans.join(" > ") }
    )
    .expect("string write");
    writeln!(out, "  epoch: {}", d.epoch.as_deref().unwrap_or("(outside epochs)"))
        .expect("string write");
    writeln!(out, "  job: {}", d.job.as_deref().unwrap_or("(none)")).expect("string write");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSink;

    fn fleet_like(grant_b: u64) -> TraceSink {
        let mut sink = TraceSink::new();
        sink.point(0, "admission-a-admit", 10);
        sink.enter(0, "epoch-0");
        sink.point(0, "grant-a", 25);
        sink.enter(0, "job-a");
        sink.exit(0, 25);
        sink.exit(0, 0);
        sink.enter(1_000_000, "epoch-1");
        sink.point(1_000_000, "grant-b", grant_b);
        sink.enter(1_000_000, "job-b");
        sink.exit(1_000_000, grant_b);
        sink.exit(1_000_000, 0);
        sink
    }

    #[test]
    fn identical_streams_have_no_divergence() {
        let a = fleet_like(30);
        let b = fleet_like(30);
        assert_eq!(first_divergence(a.events(), b.events()), None);
    }

    #[test]
    fn divergence_names_the_event_epoch_and_job() {
        let a = fleet_like(30);
        let b = fleet_like(31);
        let d = first_divergence(a.events(), b.events()).unwrap();
        assert_eq!(d.index, 7, "streams agree through epoch 0 and the epoch-1 enter");
        assert_eq!(d.open_spans, vec!["epoch-1".to_string()]);
        assert_eq!(d.epoch.as_deref(), Some("epoch-1"));
        assert_eq!(d.job.as_deref(), Some("b"), "the grant point names its job");
        let report = render(&d);
        assert!(report.contains("index 7"));
        assert!(report.contains("left:  point 7 1000000 3 grant-b 30"), "{report}");
        assert!(report.contains("right: point 7 1000000 3 grant-b 31"), "{report}");
        assert!(report.contains("epoch: epoch-1"), "{report}");
        assert!(report.contains("job: b"), "{report}");
    }

    #[test]
    fn a_truncated_stream_diverges_at_its_end() {
        let a = fleet_like(30);
        let events = a.events();
        let d = first_divergence(events, &events[..4]).unwrap();
        assert_eq!(d.index, 4);
        assert!(d.left.is_some());
        assert_eq!(d.right, None);
        assert!(render(&d).contains("<trace ended>"));
    }

    #[test]
    fn job_context_comes_from_the_open_span_stack_too() {
        let mut a = TraceSink::new();
        a.enter(0, "epoch-0");
        a.enter(0, "job-x");
        a.exit(0, 5);
        a.exit(0, 0);
        let mut b = TraceSink::new();
        b.enter(0, "epoch-0");
        b.enter(0, "job-x");
        b.exit(0, 6);
        b.exit(0, 0);
        let d = first_divergence(a.events(), b.events()).unwrap();
        assert_eq!(d.index, 2);
        assert_eq!(d.open_spans, vec!["epoch-0".to_string(), "job-x".to_string()]);
        assert_eq!(d.job.as_deref(), Some("x"));
    }
}
