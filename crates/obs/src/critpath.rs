//! `trace2critpath`: extract the longest virtual-time dependency chain
//! from a fleet trace.
//!
//! The paper's cost model (and "Walk, Not Wait", arXiv:1410.7833) says a
//! crawl's completion time is bounded by its longest *dependency chain*
//! of queries, not the query count — so this module rebuilds the causal
//! structure of a fleet run from its trace and walks it backward from
//! the last job to finish, attributing every epoch on the chain to one
//! of three phases:
//!
//! * **service** — the critical job took steps this epoch;
//! * **queue-wait** — the job was runnable but the epoch planner granted
//!   it nothing (EDF starvation, quantified per job by the planner's
//!   aging counters);
//! * **budget-stall** — the job was suspended on an exhausted ledger
//!   slice. If the grant that resumed it was released by another job's
//!   finish at the same barrier, the chain *jumps* to that releaser: the
//!   stall was really time spent waiting for the releaser's service, and
//!   the releaser's own history (not the idle wait) bounds the makespan.
//!
//! Everything here reads the shard-invariant trace plane only, so the
//! extracted path — like the trace itself — is byte-identical across
//! shard counts. Totals are in **epoch virtual time** (the fleet stamps
//! one virtual second per epoch): the per-shard pipeline clock behind
//! the report's `timing makespan-secs` line legitimately varies with
//! `W`, which is exactly why the critical path does not use it. The
//! trace's own `fleet-epochs` point is cross-checked against the
//! reconstruction as an integrity gate.

use std::collections::BTreeMap;

use crate::trace::TraceRecord;

/// What one job did during one epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochState {
    /// Took this many steps.
    Ran(u64),
    /// Runnable, granted nothing by the planner.
    Starved,
    /// Suspended on an exhausted budget slice.
    Suspended,
    /// Already finished (or cut) in an earlier epoch.
    Done,
}

/// One job's reconstructed lane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobLane {
    /// Job id (without the `job-` span prefix).
    pub id: String,
    /// Per-epoch states, `epochs` entries.
    pub states: Vec<EpochState>,
    /// Epoch whose barrier observed the job complete.
    pub finish_epoch: Option<usize>,
    /// The job was cut by the budget (after its last suspended epoch).
    pub cut: bool,
    /// Total steps across all epochs.
    pub total_steps: u64,
    /// Submission ordinal of the finish/cut point (tie-break for "last
    /// finisher"); `u64::MAX` when the trace ends with the job open.
    end_seq: u64,
}

/// One causal gossip edge, stamped with the epoch it was observed at
/// (`None` for the pre-epoch barrier).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GossipEdge {
    /// Barrier epoch, `None` for the t=0 barrier.
    pub epoch: Option<usize>,
    /// Crediting job name as recorded (`job-<id>`).
    pub from: String,
    /// Adopting job name as recorded (`job-<id>`).
    pub to: String,
    /// Adopted responses.
    pub count: u64,
}

/// The causal model of a fleet run, rebuilt from its trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetModel {
    /// Number of epochs (`epoch-N` spans) the fleet ran.
    pub epochs: usize,
    /// Job lanes in first-appearance order.
    pub jobs: Vec<JobLane>,
    /// Causal gossip edges in record order.
    pub gossip: Vec<GossipEdge>,
}

/// Model-construction failures: the trace decoded but does not describe
/// a consistent fleet run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// `epoch-N` spans did not appear as `epoch-0, epoch-1, …`.
    NonSequentialEpoch {
        /// The ordinal the span claimed.
        got: usize,
        /// The ordinal the model expected next.
        expected: usize,
    },
    /// The trace's `fleet-epochs` self-check disagrees with the number
    /// of epoch spans actually present.
    EpochCountMismatch {
        /// Value of the `fleet-epochs` point.
        declared: u64,
        /// Epoch spans counted.
        counted: usize,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::NonSequentialEpoch { got, expected } => {
                write!(f, "epoch spans out of order: saw epoch-{got}, expected epoch-{expected}")
            }
            ModelError::EpochCountMismatch { declared, counted } => {
                write!(f, "fleet-epochs declares {declared} epochs, trace contains {counted}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Per-job raw event collections gathered in one pass.
#[derive(Default)]
struct JobEvents {
    id: String,
    ran: Vec<(usize, u64)>,
    /// `(first_effective_epoch, suspended?)`, in record order.
    susp: Vec<(usize, bool)>,
    finish: Option<(usize, u64)>,
    cut: bool,
    cut_seq: Option<u64>,
}

/// What an open span is, for the model's parsing stack.
enum OpenSpan {
    Epoch,
    /// Index into the job table; the job's pending `ran` entry takes its
    /// weight from the matching exit.
    Job(usize),
    Other,
}

impl FleetModel {
    /// Rebuilds the fleet model from decoded records. Records that are
    /// not part of the fleet vocabulary (admission verdicts, ledger
    /// pool moves, scheduler `quantum-*` points) are ignored, so the
    /// model of a flat scheduler trace is simply empty of epochs.
    pub fn from_records(records: &[TraceRecord]) -> Result<FleetModel, ModelError> {
        let mut epochs = 0usize;
        let mut current: Option<usize> = None;
        let mut stack: Vec<OpenSpan> = Vec::new();
        let mut index: BTreeMap<String, usize> = BTreeMap::new();
        let mut events: Vec<JobEvents> = Vec::new();
        let mut gossip = Vec::new();
        let mut declared: Option<u64> = None;

        fn job(
            index: &mut BTreeMap<String, usize>,
            events: &mut Vec<JobEvents>,
            id: &str,
        ) -> usize {
            *index.entry(id.to_string()).or_insert_with(|| {
                events.push(JobEvents { id: id.to_string(), ..JobEvents::default() });
                events.len() - 1
            })
        }
        // Barrier events at epoch `e` take effect from epoch `e + 1`;
        // pre-epoch events (no open epoch span) from epoch 0.
        let effective = |current: Option<usize>| current.map_or(0, |e| e + 1);

        for r in records {
            match r {
                TraceRecord::Enter { name, .. } => {
                    if let Some(Ok(n)) = name.strip_prefix("epoch-").map(|n| n.parse::<usize>()) {
                        if n != epochs {
                            return Err(ModelError::NonSequentialEpoch {
                                got: n,
                                expected: epochs,
                            });
                        }
                        current = Some(n);
                        epochs += 1;
                        stack.push(OpenSpan::Epoch);
                    } else if let (Some(id), Some(e)) = (name.strip_prefix("job-"), current) {
                        // The step weight arrives on the matching exit;
                        // record the lane now so 0-cost spans still
                        // register the job.
                        let j = job(&mut index, &mut events, id);
                        events[j].ran.push((e, 0));
                        stack.push(OpenSpan::Job(j));
                    } else {
                        stack.push(OpenSpan::Other);
                    }
                }
                TraceRecord::Exit { cost, .. } => match stack.pop() {
                    Some(OpenSpan::Epoch) => current = None,
                    Some(OpenSpan::Job(j)) => {
                        if let Some(last) = events[j].ran.last_mut() {
                            last.1 = *cost;
                        }
                    }
                    Some(OpenSpan::Other) | None => {}
                },
                TraceRecord::Point { seq, name, value, .. } => {
                    if let Some(id) = name.strip_prefix("suspend-") {
                        let j = job(&mut index, &mut events, id);
                        events[j].susp.push((effective(current), true));
                    } else if let Some(id) = name.strip_prefix("resume-") {
                        let j = job(&mut index, &mut events, id);
                        events[j].susp.push((effective(current), false));
                    } else if let Some(id) = name.strip_prefix("finish-") {
                        let j = job(&mut index, &mut events, id);
                        if events[j].finish.is_none() {
                            events[j].finish = Some((current.unwrap_or(0), *seq));
                        }
                    } else if let Some(id) = name.strip_prefix("cut-") {
                        let j = job(&mut index, &mut events, id);
                        events[j].cut = true;
                        events[j].cut_seq = Some(*seq);
                    } else if name == "fleet-epochs" {
                        declared = Some(*value);
                    }
                }
                TraceRecord::Gossip { from, to, count, .. } => {
                    gossip.push(GossipEdge {
                        epoch: current,
                        from: from.clone(),
                        to: to.clone(),
                        count: *count,
                    });
                }
            }
        }

        if let Some(d) = declared {
            if d as usize != epochs {
                return Err(ModelError::EpochCountMismatch { declared: d, counted: epochs });
            }
        }

        let jobs = events
            .into_iter()
            .map(|j| {
                let id = j.id.clone();
                let mut states = Vec::with_capacity(epochs);
                let mut total = 0u64;
                let ran: BTreeMap<usize, u64> = j.ran.iter().copied().collect();
                for e in 0..epochs {
                    let suspended =
                        j.susp.iter().rfind(|&&(from, _)| from <= e).is_some_and(|&(_, s)| s);
                    let state = if let Some(&steps) = ran.get(&e) {
                        total += steps;
                        EpochState::Ran(steps)
                    } else if j.finish.is_some_and(|(f, _)| e > f) {
                        EpochState::Done
                    } else if suspended {
                        EpochState::Suspended
                    } else if j.finish.is_some_and(|(f, _)| e >= f) {
                        // Finished at a barrier without stepping this
                        // epoch (warm-started past its budget).
                        EpochState::Done
                    } else {
                        EpochState::Starved
                    };
                    states.push(state);
                }
                let end_seq = j.finish.map(|(_, s)| s).or(j.cut_seq).unwrap_or(u64::MAX);
                JobLane {
                    id,
                    states,
                    finish_epoch: j.finish.map(|(f, _)| f),
                    cut: j.cut,
                    total_steps: total,
                    end_seq,
                }
            })
            .collect();
        Ok(FleetModel { epochs, jobs, gossip })
    }

    /// The epoch a job's lane ends at: its finish epoch, or the final
    /// epoch for cut/open jobs.
    fn end_epoch(&self, lane: &JobLane) -> usize {
        lane.finish_epoch.unwrap_or_else(|| self.epochs.saturating_sub(1))
    }
}

/// Phase attribution of one critical-path segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// The critical job was stepping.
    Service,
    /// Runnable but granted nothing.
    QueueWait,
    /// Suspended on an exhausted budget slice (no releaser to blame).
    BudgetStall,
}

impl Phase {
    /// The phase's rendered name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Service => "service",
            Phase::QueueWait => "queue-wait",
            Phase::BudgetStall => "budget-stall",
        }
    }
}

/// One maximal run of consecutive epochs attributed to the same job and
/// phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathSegment {
    /// Job id.
    pub job: String,
    /// First epoch of the segment (inclusive).
    pub start: usize,
    /// Last epoch of the segment (inclusive).
    pub end: usize,
    /// Attribution.
    pub phase: Phase,
    /// Steps taken over the segment (service segments only).
    pub steps: u64,
}

/// The extracted critical path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Total virtual epochs — covers every epoch exactly once, so it
    /// equals the fleet's epoch count (the virtual-time makespan).
    pub epochs: usize,
    /// The last job to finish (the chain's terminal).
    pub terminal: String,
    /// Segments in increasing epoch order.
    pub segments: Vec<PathSegment>,
    /// Responses jobs on the path adopted through gossip.
    pub adopted_into_path: u64,
}

impl CriticalPath {
    /// Epochs attributed to `phase` across the path.
    pub fn phase_epochs(&self, phase: Phase) -> usize {
        self.segments.iter().filter(|s| s.phase == phase).map(|s| s.end - s.start + 1).sum()
    }

    /// Steps taken on service segments.
    pub fn service_steps(&self) -> u64 {
        self.segments.iter().map(|s| s.steps).sum()
    }
}

/// Walks the model backward from the last finisher to epoch 0, jumping
/// to budget releasers at resume barriers. Returns `None` for a model
/// with no epochs (flat scheduler traces — see [`flat_fallback`]).
pub fn critical_path(model: &FleetModel) -> Option<CriticalPath> {
    if model.epochs == 0 || model.jobs.is_empty() {
        return None;
    }
    // Terminal: maximal end epoch, then latest finish/cut ordinal, then
    // lexicographic id — a total order, so the choice is deterministic.
    let terminal = model
        .jobs
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            (model.end_epoch(a), a.end_seq, &a.id).cmp(&(model.end_epoch(b), b.end_seq, &b.id))
        })
        .map(|(i, _)| i)?;

    let mut per_epoch: Vec<(usize, Phase, u64)> = Vec::with_capacity(model.epochs);
    let mut cur = terminal;
    let mut e = model.end_epoch(&model.jobs[terminal]) as isize;
    while e >= 0 {
        let eu = e as usize;
        let lane = &model.jobs[cur];
        match lane.states.get(eu).copied().unwrap_or(EpochState::Done) {
            EpochState::Ran(steps) => {
                per_epoch.push((cur, Phase::Service, steps));
                e -= 1;
            }
            EpochState::Starved => {
                per_epoch.push((cur, Phase::QueueWait, 0));
                e -= 1;
            }
            EpochState::Done => {
                // Reachable only on a malformed lane; treat as service
                // of zero weight rather than looping.
                per_epoch.push((cur, Phase::Service, 0));
                e -= 1;
            }
            EpochState::Suspended => {
                // Did the stall end at this barrier (the job runs — or
                // is anything but suspended — next epoch)?
                let resumed_here =
                    lane.states.get(eu + 1).is_some_and(|s| !matches!(s, EpochState::Suspended));
                let releaser = if resumed_here {
                    model
                        .jobs
                        .iter()
                        .enumerate()
                        .filter(|(i, j)| *i != cur && j.finish_epoch == Some(eu))
                        .max_by_key(|(_, j)| j.end_seq)
                        .map(|(i, _)| i)
                } else {
                    None
                };
                match releaser {
                    Some(r) => cur = r, // re-evaluate epoch `eu` as the releaser
                    None => {
                        per_epoch.push((cur, Phase::BudgetStall, 0));
                        e -= 1;
                    }
                }
            }
        }
    }
    per_epoch.reverse();

    // Compress consecutive (job, phase) runs into segments.
    let mut segments: Vec<PathSegment> = Vec::new();
    for (epoch, &(job, phase, steps)) in per_epoch.iter().enumerate() {
        match segments.last_mut() {
            Some(s) if s.phase == phase && s.end + 1 == epoch && model.jobs[job].id == s.job => {
                s.end = epoch;
                s.steps += steps;
            }
            _ => segments.push(PathSegment {
                job: model.jobs[job].id.clone(),
                start: epoch,
                end: epoch,
                phase,
                steps,
            }),
        }
    }

    let on_path: Vec<String> = segments.iter().map(|s| format!("job-{}", s.job)).collect();
    let adopted_into_path =
        model.gossip.iter().filter(|g| on_path.contains(&g.to)).map(|g| g.count).sum();

    Some(CriticalPath {
        epochs: per_epoch.len(),
        terminal: model.jobs[terminal].id.clone(),
        segments,
        adopted_into_path,
    })
}

/// Fallback for flat (non-fleet) traces: the heaviest span is the whole
/// path. Returns `(name, weight)` of the costliest exit, outermost name
/// winning ties via first appearance.
pub fn flat_fallback(records: &[TraceRecord]) -> Option<(String, u64)> {
    let mut open: Vec<&str> = Vec::new();
    let mut best: Option<(String, u64)> = None;
    for r in records {
        match r {
            TraceRecord::Enter { name, .. } => open.push(name),
            TraceRecord::Exit { cost, .. } => {
                if let Some(name) = open.pop() {
                    if best.as_ref().map_or(true, |(_, w)| *cost > *w) {
                        best = Some((name.to_string(), *cost));
                    }
                }
            }
            _ => {}
        }
    }
    best
}

/// Renders the path as the deterministic line-oriented report
/// `trace2critpath` prints.
pub fn render(path: &CriticalPath) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(out, "# critical path (virtual time: 1 epoch = 1 second)").expect("string write");
    writeln!(out, "makespan-epochs {}", path.epochs).expect("string write");
    writeln!(out, "terminal-job {}", path.terminal).expect("string write");
    for s in &path.segments {
        write!(out, "path job={} epochs={}..{} phase={}", s.job, s.start, s.end, s.phase.name())
            .expect("string write");
        if s.phase == Phase::Service {
            write!(out, " steps={}", s.steps).expect("string write");
        }
        out.push('\n');
    }
    writeln!(
        out,
        "attribution service-epochs={} queue-wait-epochs={} budget-stall-epochs={} service-steps={}",
        path.phase_epochs(Phase::Service),
        path.phase_epochs(Phase::QueueWait),
        path.phase_epochs(Phase::BudgetStall),
        path.service_steps(),
    )
    .expect("string write");
    writeln!(out, "gossip-adopted-into-path {}", path.adopted_into_path).expect("string write");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSink;

    /// A hand-built three-epoch budgeted fleet: `a` runs and finishes at
    /// epoch 1 releasing budget; `b` stalls suspended through epochs
    /// 0–1, resumes at barrier 1, and finishes at epoch 2.
    fn stall_and_release() -> TraceSink {
        let mut sink = TraceSink::new();
        sink.point(0, "ledger-split", 100);
        sink.point(0, "suspend-b", 10);
        sink.enter(0, "epoch-0");
        sink.enter(0, "job-a");
        sink.exit(0, 40);
        sink.exit(0, 0);
        sink.enter(1_000_000, "epoch-1");
        sink.enter(1_000_000, "job-a");
        sink.exit(1_000_000, 20);
        sink.point(1_000_000, "finish-a", 60);
        sink.point(1_000_000, "ledger-reclaimed", 30);
        sink.point(1_000_000, "ledger-granted", 30);
        sink.point(1_000_000, "resume-b", 30);
        sink.exit(1_000_000, 0);
        sink.enter(2_000_000, "epoch-2");
        sink.enter(2_000_000, "job-b");
        sink.exit(2_000_000, 25);
        sink.point(2_000_000, "finish-b", 25);
        sink.gossip(2_000_000, "job-a", "job-b", 12);
        sink.exit(2_000_000, 0);
        sink.point(3_000_000, "fleet-epochs", 3);
        sink
    }

    #[test]
    fn model_reconstructs_lanes_and_barrier_effects() {
        let model = FleetModel::from_records(stall_and_release().events()).unwrap();
        assert_eq!(model.epochs, 3);
        let by_id = |id: &str| model.jobs.iter().find(|j| j.id == id).unwrap();
        let a = by_id("a");
        assert_eq!(a.states, vec![EpochState::Ran(40), EpochState::Ran(20), EpochState::Done]);
        assert_eq!(a.finish_epoch, Some(1));
        assert_eq!(a.total_steps, 60);
        let b = by_id("b");
        assert_eq!(
            b.states,
            vec![EpochState::Suspended, EpochState::Suspended, EpochState::Ran(25)],
            "suspend at t=0 holds through the resume barrier"
        );
        assert_eq!(model.gossip.len(), 1);
        assert_eq!(model.gossip[0].epoch, Some(2));
    }

    #[test]
    fn path_jumps_from_the_stalled_job_to_its_releaser() {
        let model = FleetModel::from_records(stall_and_release().events()).unwrap();
        let path = critical_path(&model).unwrap();
        assert_eq!(path.epochs, model.epochs, "the path covers every epoch exactly once");
        assert_eq!(path.terminal, "b");
        // b's suspended epochs 0..=1 are *not* idle time on the chain:
        // the releaser `a` was serving through them.
        let shape: Vec<(&str, usize, usize, Phase)> =
            path.segments.iter().map(|s| (s.job.as_str(), s.start, s.end, s.phase)).collect();
        assert_eq!(shape, vec![("a", 0, 1, Phase::Service), ("b", 2, 2, Phase::Service)],);
        assert_eq!(path.service_steps(), 85);
        assert_eq!(path.adopted_into_path, 12, "b is on the path and adopted 12 responses");
    }

    #[test]
    fn starvation_is_attributed_as_queue_wait() {
        let mut sink = TraceSink::new();
        sink.enter(0, "epoch-0");
        sink.enter(0, "job-a");
        sink.exit(0, 30);
        sink.exit(0, 0);
        // b exists (it eventually finishes last) but got no grant at 0.
        sink.enter(1_000_000, "epoch-1");
        sink.enter(1_000_000, "job-b");
        sink.exit(1_000_000, 50);
        sink.point(1_000_000, "finish-a", 30);
        sink.exit(1_000_000, 0);
        sink.enter(2_000_000, "epoch-2");
        sink.enter(2_000_000, "job-b");
        sink.exit(2_000_000, 50);
        sink.point(2_000_000, "finish-b", 100);
        sink.exit(2_000_000, 0);
        let model = FleetModel::from_records(sink.events()).unwrap();
        let path = critical_path(&model).unwrap();
        assert_eq!(path.terminal, "b");
        assert_eq!(path.phase_epochs(Phase::QueueWait), 1, "b waited out epoch 0");
        assert_eq!(path.phase_epochs(Phase::Service), 2);
        assert_eq!(path.epochs, 3);
    }

    #[test]
    fn epoch_self_check_catches_a_lying_trace() {
        let mut sink = TraceSink::new();
        sink.enter(0, "epoch-0");
        sink.exit(0, 0);
        sink.point(1_000_000, "fleet-epochs", 5);
        assert_eq!(
            FleetModel::from_records(sink.events()),
            Err(ModelError::EpochCountMismatch { declared: 5, counted: 1 })
        );
    }

    #[test]
    fn flat_traces_fall_back_to_the_heaviest_span() {
        let mut sink = TraceSink::new();
        sink.enter(0, "serve");
        sink.enter(0, "job-a");
        sink.exit(0, 10);
        sink.enter(0, "job-b");
        sink.exit(0, 90);
        sink.exit(0, 0);
        let model = FleetModel::from_records(sink.events()).unwrap();
        assert_eq!(model.epochs, 0);
        assert!(critical_path(&model).is_none());
        assert_eq!(flat_fallback(sink.events()), Some(("job-b".into(), 90)));
    }

    #[test]
    fn render_is_deterministic_and_totals_match() {
        let model = FleetModel::from_records(stall_and_release().events()).unwrap();
        let path = critical_path(&model).unwrap();
        let text = render(&path);
        assert!(text.contains("makespan-epochs 3\n"));
        assert!(text.contains("terminal-job b\n"));
        assert!(text.contains("path job=a epochs=0..1 phase=service steps=60\n"));
        assert!(text.contains(
            "attribution service-epochs=3 queue-wait-epochs=0 budget-stall-epochs=0 service-steps=85\n"
        ));
        assert_eq!(render(&path), text);
    }
}
