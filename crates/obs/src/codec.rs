//! The `mto-trace/v2` codec: FNV-checksummed, line-oriented, versioned.
//!
//! Same engineering as the history codec: a text format debuggable with
//! `cat`, strict to parse, integrity-checked end to end:
//!
//! ```text
//! mto-trace v2
//! events 5
//! enter 0 0 1 0 epoch-0
//! point 1 0 1 ledger-pool 320
//! gossip 2 0 1 job-a job-b 12
//! exit 3 0 1 128
//! point 4 1000000 0 job-finished:a 400
//! checksum 8d4f0a1b2c3d4e5f
//! ```
//!
//! * `events <n>` — declared record count, cross-checked on decode;
//! * `enter <seq> <t_us> <span> <parent> <name>` /
//!   `exit <seq> <t_us> <span> <cost>` /
//!   `point <seq> <t_us> <span> <name> <value>` /
//!   `gossip <seq> <t_us> <span> <from> <to> <count>` — one
//!   [`TraceRecord`] each, carrying the causal structure (stable span
//!   ids, parent links) introduced in v2;
//! * the trailing `checksum` is an FNV-1a 64 hash of every preceding
//!   byte, with no newline after it, so any strict prefix is detectably
//!   truncated and any flipped byte is a mismatch. The decoder never
//!   panics.
//!
//! The decoder still reads `mto-trace/v1` files (PR 7's format, no span
//! ids, no gossip records): span ids and parent links are reconstructed
//! by replaying the stack discipline the v1 sink enforced, so a v1 trace
//! decodes to exactly the records the v2 sink would have produced for
//! the same calls.

use crate::fnv1a64;
use crate::trace::{TraceRecord, TraceSink, NO_SPAN};

/// Magic of trace files.
pub const TRACE_MAGIC: &str = "mto-trace";
/// The format version this build writes.
pub const TRACE_VERSION: u32 = 2;
/// The oldest format version this build still reads.
pub const TRACE_MIN_VERSION: u32 = 1;

/// Decode failures of the trace codec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceCodecError {
    /// The checksum trailer is missing — the input was cut short.
    Truncated,
    /// The body hashes to a different value than the trailer claims.
    ChecksumMismatch {
        /// Hash of the body as read.
        computed: u64,
        /// Hash the trailer recorded.
        stored: u64,
    },
    /// The first line is not `mto-trace v<version>`.
    BadHeader(String),
    /// The file is a format version outside this build's v1..=v2 range.
    UnsupportedVersion(u32),
    /// A record line failed to parse.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for TraceCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceCodecError::Truncated => write!(f, "trace truncated: checksum trailer missing"),
            TraceCodecError::ChecksumMismatch { computed, stored } => {
                write!(f, "trace checksum mismatch: computed {computed:016x}, stored {stored:016x}")
            }
            TraceCodecError::BadHeader(line) => write!(f, "bad trace header {line:?}"),
            TraceCodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceCodecError::BadRecord { line, message } => {
                write!(f, "bad trace record at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceCodecError {}

/// Appends a decimal integer without going through `core::fmt`.
fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII"));
}

/// Appends one record as its `mto-trace/v2` line (no trailing newline).
/// This is the display form the divergence auditor prints, so it is
/// public alongside the whole-document [`encode_trace`].
pub fn render_record(out: &mut String, e: &TraceRecord) {
    match e {
        TraceRecord::Enter { seq, t_us, span, parent, name } => {
            out.push_str("enter ");
            push_u64(out, *seq);
            out.push(' ');
            push_u64(out, *t_us);
            out.push(' ');
            push_u64(out, *span);
            out.push(' ');
            push_u64(out, *parent);
            out.push(' ');
            out.push_str(name);
        }
        TraceRecord::Exit { seq, t_us, span, cost } => {
            out.push_str("exit ");
            push_u64(out, *seq);
            out.push(' ');
            push_u64(out, *t_us);
            out.push(' ');
            push_u64(out, *span);
            out.push(' ');
            push_u64(out, *cost);
        }
        TraceRecord::Point { seq, t_us, span, name, value } => {
            out.push_str("point ");
            push_u64(out, *seq);
            out.push(' ');
            push_u64(out, *t_us);
            out.push(' ');
            push_u64(out, *span);
            out.push(' ');
            out.push_str(name);
            out.push(' ');
            push_u64(out, *value);
        }
        TraceRecord::Gossip { seq, t_us, span, from, to, count } => {
            out.push_str("gossip ");
            push_u64(out, *seq);
            out.push(' ');
            push_u64(out, *t_us);
            out.push(' ');
            push_u64(out, *span);
            out.push(' ');
            out.push_str(from);
            out.push(' ');
            out.push_str(to);
            out.push(' ');
            push_u64(out, *count);
        }
    }
}

/// Serializes a sink's events as an `mto-trace/v2` document.
pub fn encode_trace(sink: &TraceSink) -> String {
    let events = sink.events();
    let mut out = String::with_capacity(64 + 40 * events.len());
    out.push_str(TRACE_MAGIC);
    out.push_str(" v");
    push_u64(&mut out, u64::from(TRACE_VERSION));
    out.push_str("\nevents ");
    push_u64(&mut out, events.len() as u64);
    out.push('\n');
    for e in events {
        render_record(&mut out, e);
        out.push('\n');
    }
    let checksum = fnv1a64(out.as_bytes());
    out.push_str("checksum ");
    use std::fmt::Write as _;
    write!(out, "{checksum:016x}").expect("string write");
    out
}

/// Splits off and verifies the checksum trailer, returning the body.
fn verify_checksum(text: &str) -> Result<&str, TraceCodecError> {
    let pos = text.rfind("\nchecksum ").ok_or(TraceCodecError::Truncated)?;
    let body = &text[..pos + 1];
    let trailer = text[pos + 1..].trim_end_matches('\n');
    let lineno = body.lines().count() + 1;
    if trailer.contains('\n') {
        return Err(TraceCodecError::BadRecord {
            line: lineno,
            message: "data after the checksum trailer".into(),
        });
    }
    let hex = trailer.strip_prefix("checksum ").expect("rfind matched this prefix");
    let stored = u64::from_str_radix(hex, 16).map_err(|e| TraceCodecError::BadRecord {
        line: lineno,
        message: format!("bad checksum literal {hex:?}: {e}"),
    })?;
    let computed = fnv1a64(body.as_bytes());
    if computed != stored {
        return Err(TraceCodecError::ChecksumMismatch { computed, stored });
    }
    Ok(body)
}

fn bad_record(lineno: usize, message: impl Into<String>) -> TraceCodecError {
    TraceCodecError::BadRecord { line: lineno, message: message.into() }
}

fn parse_num<T: std::str::FromStr>(
    token: &str,
    what: &str,
    lineno: usize,
) -> Result<T, TraceCodecError>
where
    T::Err: std::fmt::Display,
{
    token.parse().map_err(|e| bad_record(lineno, format!("bad {what} {token:?}: {e}")))
}

/// Replays the v1 stack discipline to reconstruct the span ids and
/// parent links v2 records carry explicitly.
#[derive(Default)]
struct SpanRebuilder {
    next_span: u64,
    open: Vec<u64>,
}

impl SpanRebuilder {
    fn new() -> Self {
        SpanRebuilder { next_span: 1, open: Vec::new() }
    }

    fn enter(&mut self) -> (u64, u64) {
        let span = self.next_span;
        self.next_span += 1;
        let parent = self.open.last().copied().unwrap_or(NO_SPAN);
        self.open.push(span);
        (span, parent)
    }

    fn exit(&mut self) -> u64 {
        // A v1 sink could not record an unbalanced exit; a hand-edited
        // file can, and gets the "outside any span" id.
        self.open.pop().unwrap_or(NO_SPAN)
    }

    fn current(&self) -> u64 {
        self.open.last().copied().unwrap_or(NO_SPAN)
    }
}

/// Decodes an `mto-trace/v1` or `/v2` document into its records.
pub fn decode_trace(text: &str) -> Result<Vec<TraceRecord>, TraceCodecError> {
    let body = verify_checksum(text)?;
    let mut lines = body.lines().enumerate();

    let (_, header) = lines.next().ok_or_else(|| TraceCodecError::BadHeader(String::new()))?;
    let version = header
        .strip_prefix(TRACE_MAGIC)
        .and_then(|rest| rest.strip_prefix(" v"))
        .ok_or_else(|| TraceCodecError::BadHeader(header.to_string()))?;
    let version: u32 =
        version.parse().map_err(|_| TraceCodecError::BadHeader(header.to_string()))?;
    if !(TRACE_MIN_VERSION..=TRACE_VERSION).contains(&version) {
        return Err(TraceCodecError::UnsupportedVersion(version));
    }

    let mut declared: Option<u64> = None;
    let mut records = Vec::new();
    let mut rebuilder = SpanRebuilder::new();
    for (i, line) in lines {
        let lineno = i + 1;
        let line = line.trim_end_matches('\r');
        let (keyword, rest) = match line.split_once(' ') {
            Some((k, rest)) if !k.is_empty() => (k, rest),
            _ => {
                return Err(bad_record(lineno, format!("expected `<keyword> <payload>`: {line:?}")))
            }
        };
        match keyword {
            "events" => {
                if declared.is_some() {
                    return Err(bad_record(lineno, "duplicate events record"));
                }
                declared = Some(parse_num(rest, "event count", lineno)?);
            }
            "enter" | "exit" | "point" | "gossip" => {
                if version < 2 && keyword == "gossip" {
                    return Err(bad_record(lineno, "gossip records require mto-trace v2"));
                }
                let mut tokens = rest.split(' ');
                let mut next = |what: &str| {
                    tokens
                        .next()
                        .ok_or_else(|| bad_record(lineno, format!("missing {what}")))
                        .map(str::to_owned)
                };
                let seq: u64 = parse_num(&next("seq")?, "seq", lineno)?;
                let t_us: u64 = parse_num(&next("t_us")?, "t_us", lineno)?;
                let record = match keyword {
                    "enter" => {
                        let (span, parent) = if version >= 2 {
                            let span = parse_num(&next("span")?, "span", lineno)?;
                            let parent = parse_num(&next("parent")?, "parent", lineno)?;
                            (span, parent)
                        } else {
                            rebuilder.enter()
                        };
                        TraceRecord::Enter { seq, t_us, span, parent, name: next("name")? }
                    }
                    "exit" => {
                        let span = if version >= 2 {
                            parse_num(&next("span")?, "span", lineno)?
                        } else {
                            rebuilder.exit()
                        };
                        TraceRecord::Exit {
                            seq,
                            t_us,
                            span,
                            cost: parse_num(&next("cost")?, "cost", lineno)?,
                        }
                    }
                    "point" => {
                        let span = if version >= 2 {
                            parse_num(&next("span")?, "span", lineno)?
                        } else {
                            rebuilder.current()
                        };
                        TraceRecord::Point {
                            seq,
                            t_us,
                            span,
                            name: next("name")?,
                            value: parse_num(&next("value")?, "value", lineno)?,
                        }
                    }
                    _ => TraceRecord::Gossip {
                        seq,
                        t_us,
                        span: parse_num(&next("span")?, "span", lineno)?,
                        from: next("from")?,
                        to: next("to")?,
                        count: parse_num(&next("count")?, "count", lineno)?,
                    },
                };
                if tokens.next().is_some() {
                    return Err(bad_record(lineno, format!("trailing tokens in {line:?}")));
                }
                records.push(record);
            }
            other => return Err(bad_record(lineno, format!("unknown keyword {other:?}"))),
        }
    }
    match declared {
        Some(n) if n as usize == records.len() => Ok(records),
        Some(n) => Err(bad_record(1, format!("declared {n} events, decoded {}", records.len()))),
        None => Err(bad_record(1, "missing events record")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sink() -> TraceSink {
        let mut sink = TraceSink::new();
        sink.enter(0, "epoch-0");
        sink.point(0, "ledger-pool", 320);
        sink.enter(0, "job-a");
        sink.exit(0, 64);
        sink.gossip(0, "job-a", "job-b", 12);
        sink.exit(0, 128);
        sink.point(1_000_000, "job-finished:a", 400);
        sink
    }

    #[test]
    fn round_trip_preserves_every_record() {
        let sink = sample_sink();
        let text = encode_trace(&sink);
        assert!(text.starts_with("mto-trace v2\nevents 7\n"));
        assert!(!text.ends_with('\n'), "no newline after the checksum trailer");
        let decoded = decode_trace(&text).unwrap();
        assert_eq!(decoded, sink.events());
    }

    #[test]
    fn v2_lines_carry_span_and_parent_ids() {
        let text = encode_trace(&sample_sink());
        assert!(text.contains("\nenter 0 0 1 0 epoch-0\n"), "top-level span: id 1, parent 0");
        assert!(text.contains("\nenter 2 0 2 1 job-a\n"), "nested span: id 2, parent 1");
        assert!(text.contains("\ngossip 4 0 1 job-a job-b 12\n"));
        assert!(text.contains("\npoint 6 1000000 0 job-finished:a 400\n"), "point outside spans");
    }

    #[test]
    fn encode_is_deterministic() {
        assert_eq!(encode_trace(&sample_sink()), encode_trace(&sample_sink()));
    }

    #[test]
    fn v1_documents_decode_with_reconstructed_spans() {
        // The exact byte layout PR 7's encoder produced for the sample
        // calls (minus the gossip edge, which v1 could not record).
        let v1 = "mto-trace v1\nevents 6\nenter 0 0 epoch-0\npoint 1 0 ledger-pool 320\n\
                  enter 2 0 job-a\nexit 3 0 64\nexit 4 0 128\npoint 5 1000000 job-finished:a 400\n";
        let sealed = format!("{v1}checksum {:016x}", crate::fnv1a64(v1.as_bytes()));
        let decoded = decode_trace(&sealed).unwrap();
        let mut sink = TraceSink::new();
        sink.enter(0, "epoch-0");
        sink.point(0, "ledger-pool", 320);
        sink.enter(0, "job-a");
        sink.exit(0, 64);
        sink.exit(0, 128);
        sink.point(1_000_000, "job-finished:a", 400);
        assert_eq!(decoded, sink.events(), "v1 decode reconstructs v2 span ids and parents");
    }

    #[test]
    fn gossip_records_are_rejected_in_v1_documents() {
        let v1 = "mto-trace v1\nevents 1\ngossip 0 0 1 job-a job-b 3\n";
        let sealed = format!("{v1}checksum {:016x}", crate::fnv1a64(v1.as_bytes()));
        assert!(matches!(decode_trace(&sealed), Err(TraceCodecError::BadRecord { line: 3, .. })));
    }

    #[test]
    fn truncation_and_corruption_are_detected() {
        let text = encode_trace(&sample_sink());
        let torn = &text[..text.len() - 25];
        assert_eq!(decode_trace(torn), Err(TraceCodecError::Truncated));
        let flipped = text.replacen("ledger-pool 320", "ledger-pool 321", 1);
        assert!(matches!(decode_trace(&flipped), Err(TraceCodecError::ChecksumMismatch { .. })));
    }

    #[test]
    fn header_and_record_errors_name_the_problem() {
        let empty = encode_trace(&TraceSink::new());
        let wrong_magic = empty.replacen("mto-trace v2", "mto-videotape v2", 1);
        // Re-seal so only the header is wrong.
        let body = &wrong_magic[..wrong_magic.rfind("checksum ").unwrap()];
        let resealed = format!("{body}checksum {:016x}", crate::fnv1a64(body.as_bytes()));
        assert!(matches!(decode_trace(&resealed), Err(TraceCodecError::BadHeader(_))));

        let v9 = "mto-trace v9\nevents 0\n";
        let sealed = format!("{v9}checksum {:016x}", crate::fnv1a64(v9.as_bytes()));
        assert_eq!(decode_trace(&sealed), Err(TraceCodecError::UnsupportedVersion(9)));

        let v0 = "mto-trace v0\nevents 0\n";
        let sealed = format!("{v0}checksum {:016x}", crate::fnv1a64(v0.as_bytes()));
        assert_eq!(decode_trace(&sealed), Err(TraceCodecError::UnsupportedVersion(0)));

        let bad = "mto-trace v2\nevents 0\nenter x\n";
        let sealed = format!("{bad}checksum {:016x}", crate::fnv1a64(bad.as_bytes()));
        assert!(matches!(decode_trace(&sealed), Err(TraceCodecError::BadRecord { line: 3, .. })));

        let undeclared = "mto-trace v2\npoint 0 0 0 a 1\n";
        let sealed = format!("{undeclared}checksum {:016x}", crate::fnv1a64(undeclared.as_bytes()));
        assert!(matches!(decode_trace(&sealed), Err(TraceCodecError::BadRecord { .. })));
    }

    #[test]
    fn declared_count_is_cross_checked() {
        let text = encode_trace(&sample_sink());
        let lying = text.replacen("events 7", "events 6", 1);
        let body = &lying[..lying.rfind("checksum ").unwrap()];
        let resealed = format!("{body}checksum {:016x}", crate::fnv1a64(body.as_bytes()));
        assert!(matches!(decode_trace(&resealed), Err(TraceCodecError::BadRecord { .. })));
    }
}
